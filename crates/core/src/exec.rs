//! The functional executor: the compiled sweep programs on real data.
//!
//! One OS thread per MPI process (plus four inner threads per process for
//! the hybrid approaches, exactly the paper's thread-per-core layout),
//! real packed faces through [`crate::transport::Transport`], and the real
//! stencil kernel. The schedule itself is *not* decided here:
//! `interpret_sweep` walks the [`SweepProgram`] op stream compiled by
//! [`crate::program::compile_rank`] — the same stream the timed and
//! native planes execute — and maps each op to real data movement.
//! Everything is verified against [`sequential_reference`], the
//! whole-grid single-rank computation.

use crate::config::FdConfig;
use crate::plan::{rank_assignment, recv_tag, send_tag, RankPlan};
use crate::program::{compile_rank, SweepOp, SweepProgram, ThreadRole};
use crate::trace::{SpanKind, ThreadPhases, TraceReport, WallTracer};
use crate::transport::Transport;
use gpaw_bgp_hw::topology::{Dir, LinkDir};
use gpaw_bgp_hw::CartMap;
use gpaw_grid::decomp::{Decomposition, Subdomain};
use gpaw_grid::generator;
use gpaw_grid::grid3::Grid3;
use gpaw_grid::gridset::GridSet;
use gpaw_grid::halo::{pack_batch_region, unpack_batch_region, zero_face_region, Side};
use gpaw_grid::scalar::{Scalar, C64};
use gpaw_grid::stencil::{
    apply, apply_region, apply_sequential, apply_slab, slab_bounds, BoundaryCond, StencilCoeffs,
};
use std::sync::Arc;
use std::time::Instant;

/// Scalars that can regenerate their synthetic wave-function slice locally.
pub trait SyntheticFill: Scalar {
    /// Fill grid `g`'s owned box `sub` of a `global`-extent grid.
    fn fill(grid: &mut Grid3<Self>, sub: &Subdomain, global: [usize; 3], seed: u64, g: usize);
}

impl SyntheticFill for f64 {
    fn fill(grid: &mut Grid3<f64>, sub: &Subdomain, global: [usize; 3], seed: u64, g: usize) {
        generator::fill_local_real(grid, sub, global, seed, g);
    }
}

impl SyntheticFill for C64 {
    fn fill(grid: &mut Grid3<C64>, sub: &Subdomain, global: [usize; 3], seed: u64, g: usize) {
        generator::fill_local_complex(grid, sub, global, seed, g);
    }
}

/// The side of our subdomain whose interior planes feed a send toward
/// `dir`.
fn send_side(dir: Dir) -> Side {
    match dir {
        Dir::Plus => Side::High,
        Dir::Minus => Side::Low,
    }
}

/// The ghost-plane side filled by data arriving from the neighbor in
/// direction `dir`.
fn recv_side(dir: Dir) -> Side {
    match dir {
        Dir::Plus => Side::High,
        Dir::Minus => Side::Low,
    }
}

/// Post the face sends of one batch along the given directions, `depth`
/// ghost planes deep. A widened (fused-exchange) send packs the
/// just-filled earlier-axis ghosts too ([`RankPlan::exchange_wide`]).
#[allow(clippy::too_many_arguments)] // mirrors the schedule's parameter list
fn send_batch<T: Scalar>(
    tp: &Transport<T>,
    plan: &RankPlan,
    grids: &[Grid3<T>],
    local_ids: &[usize],
    first_global: usize,
    sweep: usize,
    dirs: &[LinkDir],
    depth: usize,
    tr: &mut WallTracer,
) {
    for &ld in dirs {
        if let Some(nb) = plan.neighbors[ld.index()] {
            let points = plan.face_points[ld.axis.index()] * local_ids.len();
            let mut buf = Vec::with_capacity(points);
            tr.open(SpanKind::HaloPack);
            pack_batch_region(
                grids,
                local_ids,
                ld.axis.index(),
                send_side(ld.dir),
                depth,
                plan.exchange_wide(ld.axis),
                &mut buf,
            );
            tr.close();
            debug_assert_eq!(buf.len(), points);
            tr.open(SpanKind::Post);
            tp.send(plan.rank, nb, send_tag(sweep, first_global, ld), buf);
            tr.close();
        }
    }
}

/// Receive and unpack the face data of one batch along the given
/// directions (zero-filling ghost planes at non-periodic edges), `depth`
/// ghost planes deep with the plan's cross-section widening.
#[allow(clippy::too_many_arguments)] // mirrors the schedule's parameter list
fn recv_batch<T: Scalar>(
    tp: &Transport<T>,
    plan: &RankPlan,
    grids: &mut [Grid3<T>],
    local_ids: &[usize],
    first_global: usize,
    sweep: usize,
    dirs: &[LinkDir],
    depth: usize,
    tr: &mut WallTracer,
) {
    for &ld in dirs {
        let wide = plan.exchange_wide(ld.axis);
        match plan.neighbors[ld.index()] {
            Some(nb) => {
                tr.open(SpanKind::Wait);
                let buf = tp.recv(plan.rank, nb, recv_tag(sweep, first_global, ld));
                tr.close();
                tr.open(SpanKind::HaloUnpack);
                unpack_batch_region(
                    grids,
                    local_ids,
                    ld.axis.index(),
                    recv_side(ld.dir),
                    depth,
                    wide,
                    &buf,
                );
                tr.close();
            }
            None => {
                tr.open(SpanKind::HaloUnpack);
                for &g in local_ids {
                    zero_face_region(
                        &mut grids[g],
                        ld.axis.index(),
                        recv_side(ld.dir),
                        depth,
                        wide,
                    );
                }
                tr.close();
            }
        }
    }
}

/// One replay of one thread's compiled program, interpreted on real
/// data. `sweep` is the replay's base sweep (a multiple of the block).
///
/// The op semantics on this plane: `PostRecv` is a no-op (the in-process
/// transport buffers sends internally, so a receive needs no pre-posting),
/// `WaitAll` is the blocking receive+unpack, `ComputeWavefront` applies
/// the stencil over the extended box of its step (even steps read
/// `inputs`, odd steps read back what the previous step wrote),
/// `ApplyBoundarySlab` runs one grid through an ephemeral slab-thread
/// scope (the scope join *is* the barrier pair), and
/// `ThreadBarrier`/`AdvanceBuffer` are no-ops (sibling endpoint threads
/// share no data mid-replay, and [`run_sweeps`] swaps the buffers).
fn interpret_sweep<T: Scalar>(
    tp: &Transport<T>,
    prog: &SweepProgram,
    coef: &StencilCoeffs,
    inputs: &mut [Grid3<T>],
    outputs: &mut [Grid3<T>],
    sweep: usize,
    tr: &mut WallTracer,
) {
    let plan = &prog.plan;
    let block = prog.block();
    for op in &prog.ops {
        match *op {
            SweepOp::PostRecv { .. } => {}
            SweepOp::SendFace { batch, dirs, depth } => {
                let ids: Vec<usize> = prog.locals_of(batch).collect();
                send_batch(
                    tp,
                    plan,
                    inputs,
                    &ids,
                    prog.first_global(batch),
                    sweep,
                    dirs.dirs(),
                    depth,
                    tr,
                );
            }
            SweepOp::WaitAll { batch, dirs, depth } => {
                let ids: Vec<usize> = prog.locals_of(batch).collect();
                recv_batch(
                    tp,
                    plan,
                    inputs,
                    &ids,
                    prog.first_global(batch),
                    sweep,
                    dirs.dirs(),
                    depth,
                    tr,
                );
            }
            SweepOp::ComputeInterior { batch } => {
                tr.open(SpanKind::Compute);
                for g in prog.locals_of(batch) {
                    apply(coef, &inputs[g], &mut outputs[g]);
                }
                tr.close();
            }
            SweepOp::ComputeWavefront {
                batch,
                step,
                shrink,
            } => {
                // Extension of this step's output box: shrinks by
                // `shrink` per step toward the exact subdomain, and is
                // clamped to zero at faces with no neighbor (zero-BC
                // ghosts are zero at *every* intermediate sweep, so
                // there is nothing beyond the boundary to compute).
                let ext = shrink * (block - 1 - step);
                let mut em = [0usize; 3];
                let mut ep = [0usize; 3];
                for ld in LinkDir::ALL {
                    if plan.neighbors[ld.index()].is_some() {
                        match ld.dir {
                            Dir::Minus => em[ld.axis.index()] = ext,
                            Dir::Plus => ep[ld.axis.index()] = ext,
                        }
                    }
                }
                tr.open(SpanKind::Compute);
                for g in prog.locals_of(batch) {
                    // Even steps read the freshly exchanged inputs; odd
                    // steps read the box the previous step just wrote.
                    if step % 2 == 0 {
                        apply_region(coef, &inputs[g], &mut outputs[g], em, ep);
                    } else {
                        apply_region(coef, &outputs[g], &mut inputs[g], em, ep);
                    }
                }
                tr.close();
            }
            SweepOp::ApplyBoundarySlab { batch, index } => {
                let g = prog.locals_of(batch).start + index;
                // The slab-parallel section (spawn + compute + join) is
                // charged to the master: the ephemeral slab threads live
                // exactly this long.
                tr.open(SpanKind::Compute);
                compute_grids_slabs(coef, inputs, outputs, &[g], prog.threads);
                tr.close();
            }
            SweepOp::ThreadBarrier | SweepOp::AdvanceBuffer => {}
        }
    }
}

/// Compute grids with each grid split into x-slabs, one slab per thread —
/// concurrent writes into each output grid through disjoint slices.
fn compute_grids_slabs<T: Scalar>(
    coef: &StencilCoeffs,
    inputs: &[Grid3<T>],
    outputs: &mut [Grid3<T>],
    ids: &[usize],
    threads: usize,
) {
    let nx = inputs[0].n()[0];
    let bounds = slab_bounds(nx, threads);
    let slabs_per_grid = bounds.len() - 1;
    struct Task<'a, T> {
        input: &'a Grid3<T>,
        x0: usize,
        x1: usize,
        slab: &'a mut [T],
    }
    let mut per_thread: Vec<Vec<Task<'_, T>>> = (0..slabs_per_grid).map(|_| Vec::new()).collect();

    // Walk `outputs`, splitting off each grid to get disjoint mutable
    // slabs.
    let mut rest: &mut [Grid3<T>] = outputs;
    let mut offset = 0usize;
    for &gid in ids {
        debug_assert!(gid >= offset);
        let (_skip, tail) = rest.split_at_mut(gid - offset);
        let (grid, tail2) = match tail.split_first_mut() {
            Some(pair) => pair,
            None => unreachable!("batch id out of range"),
        };
        let cuts = &bounds[1..bounds.len() - 1];
        for (t, slab) in grid.split_x_slabs(cuts).into_iter().enumerate() {
            per_thread[t].push(Task {
                input: &inputs[gid],
                x0: bounds[t],
                x1: bounds[t + 1],
                slab,
            });
        }
        rest = tail2;
        offset = gid + 1;
    }

    std::thread::scope(|s| {
        for tasks in per_thread {
            s.spawn(move || {
                for task in tasks {
                    apply_slab(coef, task.input, task.x0, task.x1, task.slab);
                }
            });
        }
    });
}

/// Run `sweeps` sweeps as `sweeps / block` replays of
/// `one_replay(inputs, outputs, base_sweep)`; returns the grids holding
/// the final result. A replay advancing an odd number of sweeps leaves
/// its result in `outputs` (so the roles swap); an even block's
/// wavefront lands back in `inputs` and no swap happens.
fn run_sweeps<T: Scalar>(
    mut inputs: Vec<Grid3<T>>,
    mut outputs: Vec<Grid3<T>>,
    sweeps: usize,
    block: usize,
    mut one_replay: impl FnMut(&mut [Grid3<T>], &mut [Grid3<T>], usize),
) -> Vec<Grid3<T>> {
    for sweep in (0..sweeps).step_by(block) {
        one_replay(&mut inputs, &mut outputs, sweep);
        if block % 2 == 1 {
            std::mem::swap(&mut inputs, &mut outputs);
        }
    }
    inputs
}

#[allow(clippy::too_many_arguments)] // mirrors the schedule's parameter list
/// Execute one process (rank): compile the rank's programs, fill its
/// owned grids, and interpret. Returns the final local grids plus the
/// per-thread span traces (one entry for single-threaded approaches, one
/// per inner thread for hybrid-multiple).
fn process_body<T: SyntheticFill>(
    tp: &Transport<T>,
    map: &CartMap,
    rank: usize,
    grid_ext: [usize; 3],
    n_grids: usize,
    seed: u64,
    coef: &StencilCoeffs,
    cfg: &FdConfig,
    epoch: Option<Instant>,
) -> (Vec<Grid3<T>>, Vec<ThreadPhases>) {
    let plan = RankPlan::for_rank(map, grid_ext, rank, T::BYTES, cfg);
    let threads = map.partition.threads_per_process();
    let programs = compile_rank(cfg, map, &plan, n_grids, threads);
    // The grids this rank owns data for: all of them, except flat
    // static's quarter (local index i ↔ global id rank_asg.id(i)).
    let rank_asg = rank_assignment(cfg.approach, n_grids, map, rank);
    // Ghost allocation follows the exchange depth: one stencil halo per
    // fused sweep.
    let halo = plan.halo;
    let mut inputs: Vec<Grid3<T>> = Vec::with_capacity(rank_asg.count);
    for i in 0..rank_asg.count {
        let mut grid = Grid3::zeros(plan.sub.ext, halo);
        T::fill(&mut grid, &plan.sub, grid_ext, seed, rank_asg.id(i));
        inputs.push(grid);
    }
    let outputs: Vec<Grid3<T>> = (0..rank_asg.count)
        .map(|_| Grid3::zeros(plan.sub.ext, halo))
        .collect();
    let mut tr = match epoch {
        Some(e) => WallTracer::new(e),
        None => WallTracer::disabled(),
    };

    let (result, phases) = match programs[0].role {
        // Flat ranks interpret their one program on the calling thread.
        // A master-only rank interprets only the master's program: its
        // `ApplyBoundarySlab` ops materialize the pool threads as
        // ephemeral slab scopes, so the worker programs have no separate
        // functional existence.
        ThreadRole::Single | ThreadRole::Master => {
            let prog = &programs[0];
            let r = run_sweeps(inputs, outputs, prog.sweeps, prog.block(), |i, o, s| {
                interpret_sweep(tp, prog, coef, i, o, s, &mut tr)
            });
            (r, vec![tr.finish(rank, 0)])
        }
        ThreadRole::Endpoint => {
            hybrid_multiple_process(tp, &programs, coef, inputs, outputs, rank, epoch)
        }
        ThreadRole::PoolWorker { .. } => unreachable!("slot 0 is never a pool worker"),
    };
    assert!(
        tp.is_drained(rank),
        "rank {rank}: transport not drained — schedule mismatch"
    );
    (result, phases)
}

/// The hybrid-multiple process: each endpoint program runs on its own
/// inner thread with its own grids **and its own communication**
/// concurrently; the only synchronization is the per-sweep join (§VI:
/// "the synchronization penalty is therefore constant").
fn hybrid_multiple_process<T: Scalar>(
    tp: &Transport<T>,
    programs: &[SweepProgram],
    coef: &StencilCoeffs,
    inputs: Vec<Grid3<T>>,
    outputs: Vec<Grid3<T>>,
    rank: usize,
    epoch: Option<Instant>,
) -> (Vec<Grid3<T>>, Vec<ThreadPhases>) {
    let threads = programs.len();
    let n_grids = inputs.len();
    // Deal grids to the thread whose program's assignment owns them —
    // derived from the compiled programs, not re-decided here.
    let mut owner = vec![usize::MAX; n_grids];
    for (t, p) in programs.iter().enumerate() {
        for i in 0..p.asg.count {
            owner[p.asg.id(i)] = t;
        }
    }
    debug_assert!(owner.iter().all(|&t| t < threads));
    let mut in_parts: Vec<Vec<Grid3<T>>> = (0..threads).map(|_| Vec::new()).collect();
    let mut out_parts: Vec<Vec<Grid3<T>>> = (0..threads).map(|_| Vec::new()).collect();
    for (g, grid) in inputs.into_iter().enumerate() {
        in_parts[owner[g]].push(grid);
    }
    for (g, grid) in outputs.into_iter().enumerate() {
        out_parts[owner[g]].push(grid);
    }

    let mut results: Vec<Option<(Vec<Grid3<T>>, ThreadPhases)>> =
        (0..threads).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (t, (ins, outs)) in in_parts.drain(..).zip(out_parts.drain(..)).enumerate() {
            let prog = &programs[t];
            handles.push(s.spawn(move || {
                let mut tr = match epoch {
                    Some(e) => WallTracer::new(e),
                    None => WallTracer::disabled(),
                };
                debug_assert_eq!(prog.asg.count, ins.len());
                let r = run_sweeps(ins, outs, prog.sweeps, prog.block(), |i, o, sweep| {
                    interpret_sweep(tp, prog, coef, i, o, sweep, &mut tr)
                });
                (r, tr.finish(rank, t))
            }));
        }
        for (t, h) in handles.into_iter().enumerate() {
            results[t] = Some(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
    });

    // Interleave back into global order.
    let mut phases = Vec::with_capacity(threads);
    let mut iters: Vec<_> = results
        .into_iter()
        .map(|r| {
            let (grids, tp_) = match r {
                Some(pair) => pair,
                None => unreachable!("all threads joined"),
            };
            phases.push(tp_);
            grids.into_iter()
        })
        .collect();
    let grids = (0..n_grids)
        .map(|g| match iters[owner[g]].next() {
            Some(grid) => grid,
            None => unreachable!("owner map exhausted"),
        })
        .collect();
    (grids, phases)
}

/// Run a distributed FD job and return each rank's final local grids, in
/// rank order.
pub fn run_distributed<T: SyntheticFill>(
    grid_ext: [usize; 3],
    n_grids: usize,
    seed: u64,
    coef: &StencilCoeffs,
    cfg: &FdConfig,
    map: &CartMap,
) -> Vec<GridSet<T>> {
    run_distributed_impl(grid_ext, n_grids, seed, coef, cfg, map, None).0
}

/// [`run_distributed`] with wall-clock span tracing: also returns where
/// each (rank, thread)'s time went, in the same span vocabulary as the
/// timed plane.
pub fn run_distributed_traced<T: SyntheticFill>(
    grid_ext: [usize; 3],
    n_grids: usize,
    seed: u64,
    coef: &StencilCoeffs,
    cfg: &FdConfig,
    map: &CartMap,
) -> (Vec<GridSet<T>>, TraceReport) {
    let epoch = Instant::now();
    let (sets, phases) = run_distributed_impl(grid_ext, n_grids, seed, coef, cfg, map, Some(epoch));
    (sets, TraceReport::from_threads(epoch, phases))
}

fn run_distributed_impl<T: SyntheticFill>(
    grid_ext: [usize; 3],
    n_grids: usize,
    seed: u64,
    coef: &StencilCoeffs,
    cfg: &FdConfig,
    map: &CartMap,
    epoch: Option<Instant>,
) -> (Vec<GridSet<T>>, Vec<ThreadPhases>) {
    assert!(n_grids > 0);
    let ranks = map.ranks();
    let tp: Arc<Transport<T>> = Arc::new(Transport::new(ranks));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let tp = Arc::clone(&tp);
                let map = &*map;
                let coef = &*coef;
                let cfg = &*cfg;
                s.spawn(move || {
                    let (grids, phases) =
                        process_body(&tp, map, rank, grid_ext, n_grids, seed, coef, cfg, epoch);
                    (GridSet::from_grids(grids), phases)
                })
            })
            .collect();
        let mut sets = Vec::with_capacity(ranks);
        let mut all_phases = Vec::new();
        for h in handles {
            let (set, phases) = h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
            sets.push(set);
            all_phases.extend(phases);
        }
        (sets, all_phases)
    })
}

/// The single-rank, whole-grid ground truth.
pub fn sequential_reference<T: SyntheticFill>(
    grid_ext: [usize; 3],
    n_grids: usize,
    seed: u64,
    coef: &StencilCoeffs,
    bc: BoundaryCond,
    sweeps: usize,
) -> GridSet<T> {
    let halo = StencilCoeffs::HALO;
    let whole = Subdomain {
        start: [0; 3],
        ext: grid_ext,
    };
    let mut inputs: Vec<Grid3<T>> = (0..n_grids)
        .map(|g| {
            let mut grid = Grid3::zeros(grid_ext, halo);
            T::fill(&mut grid, &whole, grid_ext, seed, g);
            grid
        })
        .collect();
    let mut outputs: Vec<Grid3<T>> = (0..n_grids).map(|_| Grid3::zeros(grid_ext, halo)).collect();
    for _ in 0..sweeps {
        for g in 0..n_grids {
            apply_sequential(coef, &mut inputs[g], &mut outputs[g], bc);
        }
        std::mem::swap(&mut inputs, &mut outputs);
    }
    GridSet::from_grids(inputs)
}

/// Largest absolute difference between the distributed outputs and the
/// sequential reference over every rank's subdomain of every grid.
///
/// Assumes every rank holds all grids under the process-grid
/// decomposition — true for the four paper approaches. For approaches
/// whose ranks own grid *subsets* (flat static), use
/// [`max_error_vs_reference_planned`].
pub fn max_error_vs_reference<T: SyntheticFill>(
    outputs: &[GridSet<T>],
    map: &CartMap,
    grid_ext: [usize; 3],
    reference: &GridSet<T>,
) -> f64 {
    let decomp = Decomposition::new(grid_ext, map.proc_dims);
    let mut worst = 0.0f64;
    for (rank, set) in outputs.iter().enumerate() {
        let sub = decomp.subdomain(map.proc_coord(rank).0);
        for g in 0..set.len() {
            worst = worst.max(max_sub_error(set.grid(g), reference.grid(g), &sub));
        }
    }
    worst
}

/// Plan-aware variant of [`max_error_vs_reference`]: derives each rank's
/// subdomain and grid ownership from the compiled plan, so it validates
/// any approach — including flat static, whose ranks own node-level
/// subdomains and a quarter of the grid set.
pub fn max_error_vs_reference_planned<T: SyntheticFill>(
    outputs: &[GridSet<T>],
    map: &CartMap,
    grid_ext: [usize; 3],
    reference: &GridSet<T>,
    cfg: &FdConfig,
) -> f64 {
    let n_grids = reference.len();
    let mut worst = 0.0f64;
    for (rank, set) in outputs.iter().enumerate() {
        let plan = RankPlan::for_rank(map, grid_ext, rank, T::BYTES, cfg);
        let asg = rank_assignment(cfg.approach, n_grids, map, rank);
        assert_eq!(
            set.len(),
            asg.count,
            "rank {rank}: grid count does not match its assignment"
        );
        for i in 0..set.len() {
            worst = worst.max(max_sub_error(
                set.grid(i),
                reference.grid(asg.id(i)),
                &plan.sub,
            ));
        }
    }
    worst
}

/// Largest absolute difference between `local` and the `sub` box of
/// `global`.
fn max_sub_error<T: Scalar>(local: &Grid3<T>, global: &Grid3<T>, sub: &Subdomain) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..sub.ext[0] {
        for j in 0..sub.ext[1] {
            for k in 0..sub.ext[2] {
                let a = local.get(i as isize, j as isize, k as isize);
                let b = global.get(
                    (sub.start[0] + i) as isize,
                    (sub.start[1] + j) as isize,
                    (sub.start[2] + k) as isize,
                );
                worst = worst.max((a - b).abs());
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Approach;
    use gpaw_bgp_hw::{ExecMode, Partition};

    fn coef() -> StencilCoeffs {
        StencilCoeffs::laplacian([0.2, 0.25, 0.3])
    }

    fn virtual_map(nodes: usize, grid: [usize; 3]) -> CartMap {
        let p = Partition::standard(nodes, ExecMode::Virtual).unwrap();
        CartMap::best(p, grid)
    }

    fn smp_map(nodes: usize, grid: [usize; 3]) -> CartMap {
        let p = Partition::standard(nodes, ExecMode::Smp).unwrap();
        CartMap::best(p, grid)
    }

    fn check<T: SyntheticFill>(cfg: &FdConfig, map: &CartMap, grid: [usize; 3], n_grids: usize) {
        let c = coef();
        let outputs = run_distributed::<T>(grid, n_grids, 42, &c, cfg, map);
        let reference = sequential_reference::<T>(grid, n_grids, 42, &c, cfg.bc, cfg.sweeps);
        let err = max_error_vs_reference_planned(&outputs, map, grid, &reference, cfg);
        assert_eq!(
            err,
            0.0,
            "{} diverged from the sequential reference",
            cfg.approach.label()
        );
    }

    #[test]
    fn flat_original_matches_reference() {
        let grid = [12, 10, 8];
        let map = virtual_map(2, grid); // 8 ranks
        check::<f64>(&FdConfig::paper(Approach::FlatOriginal), &map, grid, 5);
    }

    #[test]
    fn flat_optimized_matches_reference() {
        let grid = [12, 10, 8];
        let map = virtual_map(2, grid);
        let cfg = FdConfig::paper(Approach::FlatOptimized).with_batch(3);
        check::<f64>(&cfg, &map, grid, 7);
    }

    #[test]
    fn flat_static_matches_reference() {
        // The §VII diagnostic runs functionally now: node-level
        // subdomains, each virtual rank sweeping its core's quarter of
        // the grid set.
        let grid = [12, 10, 8];
        let map = virtual_map(2, grid);
        let cfg = FdConfig::paper(Approach::FlatStatic).with_batch(2);
        check::<f64>(&cfg, &map, grid, 9);
    }

    #[test]
    fn hybrid_multiple_matches_reference() {
        let grid = [12, 12, 12];
        let map = smp_map(2, grid); // 2 processes × 4 threads
        let cfg = FdConfig::paper(Approach::HybridMultiple).with_batch(2);
        check::<f64>(&cfg, &map, grid, 9);
    }

    #[test]
    fn hybrid_master_only_matches_reference() {
        let grid = [13, 9, 11]; // odd extents: uneven slabs too
        let map = smp_map(2, grid);
        let cfg = FdConfig::paper(Approach::HybridMasterOnly).with_batch(4);
        check::<f64>(&cfg, &map, grid, 6);
    }

    #[test]
    fn complex_grids_match_reference() {
        let grid = [10, 10, 10];
        let map = smp_map(2, grid);
        let cfg = FdConfig::paper(Approach::HybridMultiple).with_batch(3);
        check::<C64>(&cfg, &map, grid, 4);
    }

    #[test]
    fn zero_boundary_matches_reference() {
        let grid = [12, 10, 8];
        let map = virtual_map(2, grid);
        let mut cfg = FdConfig::paper(Approach::FlatOptimized).with_batch(2);
        cfg.bc = BoundaryCond::Zero;
        check::<f64>(&cfg, &map, grid, 3);
    }

    #[test]
    fn multiple_sweeps_match_reference() {
        let grid = [10, 10, 10];
        let map = virtual_map(1, grid); // 4 ranks on one node
        let cfg = FdConfig::paper(Approach::FlatOptimized)
            .with_batch(2)
            .with_sweeps(3);
        check::<f64>(&cfg, &map, grid, 4);
    }

    #[test]
    fn uneven_decomposition_matches_reference() {
        // 13 is not divisible by anything useful: remainder paths everywhere.
        let grid = [13, 13, 13];
        let map = virtual_map(2, grid);
        let cfg = FdConfig::paper(Approach::FlatOptimized).with_batch(3);
        check::<f64>(&cfg, &map, grid, 5);
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let grid = [12, 10, 8];
        let map = smp_map(2, grid);
        let c = coef();
        let base = run_distributed::<f64>(
            grid,
            6,
            7,
            &c,
            &FdConfig::paper(Approach::HybridMultiple).with_batch(1),
            &map,
        );
        for batch in [2, 3, 6, 100] {
            let other = run_distributed::<f64>(
                grid,
                6,
                7,
                &c,
                &FdConfig::paper(Approach::HybridMultiple).with_batch(batch),
                &map,
            );
            for (a, b) in base.iter().zip(&other) {
                for g in 0..a.len() {
                    assert_eq!(
                        gpaw_grid::norms::max_abs_diff(a.grid(g), b.grid(g)),
                        0.0,
                        "batch {batch} changed the result"
                    );
                }
            }
        }
    }

    #[test]
    fn double_buffer_does_not_change_results() {
        let grid = [12, 10, 8];
        let map = virtual_map(2, grid);
        let c = coef();
        let mut on = FdConfig::paper(Approach::FlatOptimized).with_batch(2);
        on.double_buffer = true;
        let mut off = on;
        off.double_buffer = false;
        let a = run_distributed::<f64>(grid, 5, 9, &c, &on, &map);
        let b = run_distributed::<f64>(grid, 5, 9, &c, &off, &map);
        for (x, y) in a.iter().zip(&b) {
            for g in 0..x.len() {
                assert_eq!(gpaw_grid::norms::max_abs_diff(x.grid(g), y.grid(g)), 0.0);
            }
        }
    }

    #[test]
    fn growing_first_batch_does_not_change_results() {
        let grid = [12, 10, 8];
        let map = smp_map(1, grid);
        let c = coef();
        let mut cfg = FdConfig::paper(Approach::HybridMasterOnly).with_batch(4);
        cfg.growing_first_batch = true;
        check::<f64>(&cfg, &map, grid, 10);
        let _ = c;
    }

    #[test]
    fn traced_run_reports_spans_for_every_thread() {
        let grid = [12, 12, 12];
        let map = smp_map(2, grid); // 2 processes × 4 threads
        let cfg = FdConfig::paper(Approach::HybridMultiple).with_batch(2);
        let c = coef();
        let (sets, trace) = run_distributed_traced::<f64>(grid, 8, 42, &c, &cfg, &map);
        assert_eq!(sets.len(), 2);
        assert_eq!(trace.thread_phases.len(), 8, "2 ranks × 4 inner threads");
        for kind in [
            SpanKind::Compute,
            SpanKind::HaloPack,
            SpanKind::HaloUnpack,
            SpanKind::Post,
            SpanKind::Wait,
        ] {
            assert!(
                trace.phases.get(kind) > gpaw_des::SimDuration::ZERO,
                "{kind:?} missing from functional trace"
            );
        }
        // Spans never exceed the thread's lifetime, and every thread ends
        // within the run.
        for t in &trace.thread_phases {
            assert!(
                t.spans.total() <= t.finish,
                "rank {} slot {}",
                t.rank,
                t.slot
            );
            assert!(t.finish <= trace.elapsed);
        }
        // The traced run still produces correct numerics.
        let reference = sequential_reference::<f64>(grid, 8, 42, &c, cfg.bc, cfg.sweeps);
        assert_eq!(max_error_vs_reference(&sets, &map, grid, &reference), 0.0);
    }

    #[test]
    fn single_process_periodic_self_exchange() {
        // One SMP process: every neighbor is itself; the exchange must
        // reproduce fill_halo_periodic semantics.
        let grid = [9, 9, 9];
        let map = smp_map(1, grid);
        let cfg = FdConfig::paper(Approach::HybridMultiple).with_batch(2);
        check::<f64>(&cfg, &map, grid, 5);
    }

    #[test]
    fn temporal_blocked_matches_reference() {
        // 4 sweeps fused 2 at a time: two depth-4 ordered exchanges
        // replace four depth-2 ones, bitwise against the reference.
        let grid = [12, 10, 8];
        let map = smp_map(2, grid);
        let cfg = FdConfig::paper(Approach::TemporalBlocked)
            .with_batch(2)
            .with_sweeps(4);
        check::<f64>(&cfg, &map, grid, 9);
    }

    #[test]
    fn temporal_blocked_zero_boundary_matches_reference() {
        // Zero BC: the wavefront clamps its extension at no-neighbor
        // faces and forwarded ghost zeros are the correct outside data.
        let grid = [12, 10, 8];
        let map = smp_map(2, grid);
        let mut cfg = FdConfig::paper(Approach::TemporalBlocked)
            .with_batch(2)
            .with_sweeps(4);
        cfg.bc = BoundaryCond::Zero;
        check::<f64>(&cfg, &map, grid, 5);
    }

    #[test]
    fn temporal_blocked_single_process_self_exchange() {
        // Every neighbor is the rank itself: the fused ordered exchange
        // must still reproduce periodic wrap semantics.
        let grid = [9, 9, 9];
        let map = smp_map(1, grid);
        let cfg = FdConfig::paper(Approach::TemporalBlocked)
            .with_batch(2)
            .with_sweeps(4);
        check::<f64>(&cfg, &map, grid, 5);
    }

    #[test]
    fn temporal_blocked_complex_grids_match_reference() {
        let grid = [10, 10, 10];
        let map = smp_map(2, grid);
        let cfg = FdConfig::paper(Approach::TemporalBlocked)
            .with_batch(3)
            .with_sweeps(2);
        check::<C64>(&cfg, &map, grid, 4);
    }

    #[test]
    fn temporal_blocked_prime_sweeps_degrade_to_depth_one() {
        // 3 sweeps have no divisor ≤ 2 except 1: the block degrades
        // gracefully to per-sweep exchange and must still be exact.
        let grid = [12, 10, 8];
        let map = smp_map(2, grid);
        let cfg = FdConfig::paper(Approach::TemporalBlocked)
            .with_batch(2)
            .with_sweeps(3);
        assert_eq!(cfg.effective_block(), 1);
        check::<f64>(&cfg, &map, grid, 6);
    }

    #[test]
    fn temporal_blocked_depth_three_matches_reference() {
        // An odd block (3): the wavefront ends in `outputs` and the
        // buffers swap, unlike the even case.
        let grid = [16, 14, 12];
        let map = smp_map(2, grid);
        let cfg = FdConfig::paper(Approach::TemporalBlocked)
            .with_batch(2)
            .with_sweeps(3)
            .with_temporal_depth(3);
        assert_eq!(cfg.effective_block(), 3);
        check::<f64>(&cfg, &map, grid, 5);
    }
}
