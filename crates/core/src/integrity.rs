//! One shared checksum/digest module — the integrity plane's primitives.
//!
//! Every plane that moves or stores bits verifies them with a digest from
//! this module, each over its own domain:
//!
//! * [`crc32`] — the on-disk domain: durable checkpoint frames
//!   ([`crate::durable`]) CRC their headers and payloads with the IEEE
//!   802.3 polynomial, byte-oriented because files are bytes;
//! * [`payload_digest`] — the in-flight domain: every native-fabric
//!   message carries an FNV-1a digest of its payload's
//!   [`Scalar::bit_pattern`] words, computed at send over the intact
//!   payload and verified at recv before the sequence cursor advances;
//! * [`grids_digest`] — the in-memory domain:
//!   [`CheckpointStore`](crate::checkpoint::CheckpointStore) snapshots
//!   carry a digest of their full padded storage (halos included),
//!   verified before any rollback target or durable spill trusts them;
//! * [`run_digest`] — the result domain: two runs digest equal iff their
//!   interior points are bitwise identical (the job service's parity
//!   check).
//!
//! The FNV-1a step `h ← (h ⊕ w) · PRIME` is a bijection of the state for
//! any fixed word `w` (the prime is odd, so multiplication is invertible
//! mod 2⁶⁴). Two equal-length word streams differing in even a single
//! bit therefore *always* digest differently — single-bit flips are
//! rejected exactly, not probabilistically. That property is what lets
//! the fault plane's corruption tests sweep every bit position and
//! assert detection, and it is tested here the same way.

use gpaw_grid::grid3::Grid3;
use gpaw_grid::gridset::GridSet;
use gpaw_grid::scalar::Scalar;

/// CRC-32 (IEEE 802.3, the zlib polynomial), bitwise and dependency-free.
/// Durable files are a few hundred KB at simulation scale, so the simple
/// loop beats carrying a table or a crate.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn mix(h: &mut u64, w: u64) {
    *h ^= w;
    *h = h.wrapping_mul(FNV_PRIME);
}

/// FNV-1a digest of a run's grids: every interior point's raw bit
/// pattern, walked in rank order, grid order, then row-major index
/// order, with the set and grid shapes folded in. Two runs digest equal
/// iff their results are bitwise identical.
pub fn run_digest<T: Scalar>(sets: &[GridSet<T>]) -> u64 {
    let mut h = FNV_OFFSET;
    mix(&mut h, sets.len() as u64);
    for set in sets {
        mix(&mut h, set.len() as u64);
        for g in 0..set.len() {
            for ([_, _, _], v) in set.grid(g).iter_interior() {
                let [a, b] = v.bit_pattern();
                mix(&mut h, a);
                mix(&mut h, b);
            }
        }
    }
    h
}

/// FNV-1a digest of one message payload: length, then each element's
/// occupied [`Scalar::bit_pattern`] words (1 for `f64`, 2 for `C64`).
/// Computed by the fabric at send over the intact payload; verified at
/// recv before the per-tag sequence cursor advances, so a flipped bit is
/// detected before it can influence any grid.
pub fn payload_digest<T: Scalar>(payload: &[T]) -> u64 {
    let words = T::BYTES / 8;
    let mut h = FNV_OFFSET;
    mix(&mut h, payload.len() as u64);
    for v in payload {
        let pattern = v.bit_pattern();
        for &w in &pattern[..words] {
            mix(&mut h, w);
        }
    }
    h
}

/// FNV-1a digest of one checkpoint snapshot: per grid the shape, halo and
/// the *full padded storage* (halos included — exactly the words a
/// restore copies back), after the grid count. This is what
/// [`CheckpointStore`](crate::checkpoint::CheckpointStore) records at
/// deposit and re-derives before trusting a snapshot at rollback,
/// restore, or durable spill.
pub fn grids_digest<T: Scalar>(grids: &[Grid3<T>]) -> u64 {
    let words = T::BYTES / 8;
    let mut h = FNV_OFFSET;
    mix(&mut h, grids.len() as u64);
    for g in grids {
        let [n0, n1, n2] = g.n();
        for d in [n0, n1, n2, g.halo()] {
            mix(&mut h, d as u64);
        }
        mix(&mut h, g.data().len() as u64);
        for v in g.data() {
            let pattern = v.bit_pattern();
            for &w in &pattern[..words] {
                mix(&mut h, w);
            }
        }
    }
    h
}

/// Flip exactly one bit of `payload`, selected by `raw` modulo the
/// payload's occupied bit count. This is the corruption the fault
/// plane's `CorruptPayload` injector applies — a pure function of its
/// seeded draw, so the same injection reproduces the same flipped bit.
/// Empty payloads are left untouched (there is nothing to corrupt).
pub fn flip_bit<T: Scalar>(payload: &mut [T], raw: u64) {
    let words = (T::BYTES / 8) as u64;
    let total_bits = payload.len() as u64 * words * 64;
    if total_bits == 0 {
        return;
    }
    let b = raw % total_bits;
    let elem = (b / (words * 64)) as usize;
    let word = ((b / 64) % words) as usize;
    let mut pattern = payload[elem].bit_pattern();
    pattern[word] ^= 1u64 << (b % 64);
    payload[elem] = T::from_bit_pattern(pattern);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpaw_grid::scalar::C64;

    /// Deterministic pseudo-random payload, no `rand` dependency.
    fn seeded_payload(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                f64::from_bits((state >> 12) | 0x3FF0_0000_0000_0000) - 1.0
            })
            .collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn payload_digest_accepts_every_valid_payload() {
        for seed in 0..32u64 {
            let p = seeded_payload(seed, 1 + (seed as usize % 7));
            assert_eq!(payload_digest(&p), payload_digest(&p.clone()));
        }
    }

    /// The core single-bit-flip property: for seeded payloads, flipping
    /// *any* single bit changes the digest, and flipping it back
    /// restores it — detection is exact, not probabilistic.
    #[test]
    fn payload_digest_rejects_any_single_bit_flip() {
        for seed in 0..8u64 {
            let clean = seeded_payload(seed, 5);
            let digest = payload_digest(&clean);
            let total_bits = clean.len() as u64 * 64;
            for bit in 0..total_bits {
                let mut flipped = clean.clone();
                flip_bit(&mut flipped, bit);
                assert_ne!(
                    payload_digest(&flipped),
                    digest,
                    "seed {seed}: flipping bit {bit} went undetected"
                );
                flip_bit(&mut flipped, bit);
                assert_eq!(payload_digest(&flipped), digest);
            }
        }
    }

    #[test]
    fn complex_payloads_cover_both_words() {
        let clean: Vec<C64> = seeded_payload(3, 4)
            .chunks(2)
            .map(|c| C64::new(c[0], c[1]))
            .collect();
        let digest = payload_digest(&clean);
        let total_bits = clean.len() as u64 * 128;
        for bit in 0..total_bits {
            let mut flipped = clean.clone();
            flip_bit(&mut flipped, bit);
            assert_ne!(
                payload_digest(&flipped),
                digest,
                "C64: flipping bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn flip_bit_wraps_and_ignores_empty() {
        let mut empty: Vec<f64> = Vec::new();
        flip_bit(&mut empty, 17); // must not panic
        let mut p = seeded_payload(1, 2);
        let q = p.clone();
        flip_bit(&mut p, 128); // wraps to bit 0
        assert_ne!(p[0].to_bits(), q[0].to_bits());
        assert_eq!(p[1].to_bits(), q[1].to_bits());
    }

    #[test]
    fn grids_digest_sees_every_stored_word() {
        let mut g = Grid3::<f64>::zeros([3, 3, 3], 1);
        for (i, v) in g.data_mut().iter_mut().enumerate() {
            *v = i as f64 * 0.25 - 3.0;
        }
        let grids = vec![g];
        let digest = grids_digest(&grids);
        // Flip one bit of a *halo* word: still detected, because the
        // digest covers the full padded storage a restore copies back.
        let mut tampered = grids.clone();
        let d = tampered[0].data_mut();
        let w = d[0].to_bits() ^ 1;
        d[0] = f64::from_bits(w);
        assert_ne!(grids_digest(&tampered), digest);
        // Shape is folded in: same words, different halo digests apart.
        let other = vec![Grid3::<f64>::zeros([3, 3, 3], 2)];
        let same = vec![Grid3::<f64>::zeros([3, 3, 3], 2)];
        assert_eq!(grids_digest(&other), grids_digest(&same));
    }
}
