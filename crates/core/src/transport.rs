//! In-process message transport for the functional plane.
//!
//! Ranks are OS threads inside one test process; a message is a `Vec<T>`
//! of packed face data, matched MPI-style on `(source, tag)` with FIFO
//! ordering per pair. Sends never block (buffered, like eager-protocol
//! MPI), receives block until a match arrives — which is all the engine
//! needs, since every schedule posts its sends before its receives.
//!
//! The mailbox is thread-safe, so the *hybrid multiple* approach can let
//! all four threads of a process send and receive concurrently — the
//! functional analogue of `MPI_THREAD_MULTIPLE`.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Match key: (source rank, tag).
type Key = (usize, u64);

struct Mailbox<T> {
    queues: Mutex<HashMap<Key, VecDeque<Vec<T>>>>,
    arrived: Condvar,
}

impl<T> Mailbox<T> {
    /// Lock the queue map. Senders never panic while holding the lock, so
    /// a poisoned mutex only ever reflects a panic already unwinding the
    /// test process — recover the guard rather than double-panicking.
    fn lock(&self) -> MutexGuard<'_, HashMap<Key, VecDeque<Vec<T>>>> {
        self.queues.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Mailbox {
            queues: Mutex::new(HashMap::new()),
            arrived: Condvar::new(),
        }
    }
}

/// A cluster-wide transport: one mailbox per rank.
pub struct Transport<T> {
    boxes: Vec<Mailbox<T>>,
}

impl<T: Send> Transport<T> {
    /// Transport for `ranks` ranks.
    pub fn new(ranks: usize) -> Transport<T> {
        Transport {
            boxes: (0..ranks).map(|_| Mailbox::default()).collect(),
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.boxes.len()
    }

    /// Deliver `payload` to `dst`, stamped as coming from `src` with `tag`.
    /// Never blocks.
    pub fn send(&self, src: usize, dst: usize, tag: u64, payload: Vec<T>) {
        let mbox = &self.boxes[dst];
        let mut q = mbox.lock();
        q.entry((src, tag)).or_default().push_back(payload);
        mbox.arrived.notify_all();
    }

    /// Block until a message from `(src, tag)` is available for `me`, then
    /// take it.
    pub fn recv(&self, me: usize, src: usize, tag: u64) -> Vec<T> {
        let mbox = &self.boxes[me];
        let mut q = mbox.lock();
        loop {
            if let Some(payload) = q.get_mut(&(src, tag)).and_then(VecDeque::pop_front) {
                return payload;
            }
            q = mbox.arrived.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive (tests and drain checks).
    pub fn try_recv(&self, me: usize, src: usize, tag: u64) -> Option<Vec<T>> {
        let mut q = self.boxes[me].lock();
        q.get_mut(&(src, tag)).and_then(VecDeque::pop_front)
    }

    /// True when rank `me` has no undelivered messages — every schedule
    /// must leave the transport drained (a leftover message means a
    /// send/recv mismatch).
    pub fn is_drained(&self, me: usize) -> bool {
        self.boxes[me].lock().values().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn send_then_recv() {
        let t: Transport<f64> = Transport::new(2);
        t.send(0, 1, 7, vec![1.0, 2.0]);
        assert_eq!(t.recv(1, 0, 7), vec![1.0, 2.0]);
        assert!(t.is_drained(1));
    }

    #[test]
    fn fifo_per_key() {
        let t: Transport<u8> = Transport::new(1);
        t.send(0, 0, 1, vec![1]);
        t.send(0, 0, 1, vec![2]);
        assert_eq!(t.recv(0, 0, 1), vec![1]);
        assert_eq!(t.recv(0, 0, 1), vec![2]);
    }

    #[test]
    fn tags_do_not_cross_match() {
        let t: Transport<u8> = Transport::new(1);
        t.send(0, 0, 1, vec![1]);
        t.send(0, 0, 2, vec![2]);
        assert_eq!(t.recv(0, 0, 2), vec![2]);
        assert_eq!(t.recv(0, 0, 1), vec![1]);
    }

    #[test]
    fn try_recv_does_not_block() {
        let t: Transport<u8> = Transport::new(1);
        assert_eq!(t.try_recv(0, 0, 9), None);
        t.send(0, 0, 9, vec![3]);
        assert_eq!(t.try_recv(0, 0, 9), Some(vec![3]));
    }

    #[test]
    fn blocking_recv_wakes_on_late_send() {
        let t: Arc<Transport<u64>> = Arc::new(Transport::new(2));
        let t2 = t.clone();
        let h = std::thread::spawn(move || t2.recv(1, 0, 42));
        std::thread::sleep(std::time::Duration::from_millis(20));
        t.send(0, 1, 42, vec![99]);
        assert_eq!(h.join().unwrap(), vec![99]);
    }

    #[test]
    fn concurrent_threads_share_one_mailbox() {
        // Four "threads of a process" receiving distinct tags concurrently —
        // the MPI_THREAD_MULTIPLE pattern of hybrid multiple.
        let t: Arc<Transport<u64>> = Arc::new(Transport::new(1));
        let handles: Vec<_> = (0..4u64)
            .map(|tag| {
                let t = t.clone();
                std::thread::spawn(move || t.recv(0, 0, tag))
            })
            .collect();
        for tag in (0..4u64).rev() {
            t.send(0, 0, tag, vec![tag * 10]);
        }
        for (tag, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), vec![tag as u64 * 10]);
        }
    }
}
