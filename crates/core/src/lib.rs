//! # gpaw-fd — the distributed finite-difference engine
//!
//! The paper's primary contribution, implemented as **one program with
//! three interpreters**: every approach's sweep schedule is compiled
//! exactly once ([`program::compile_rank`]) into a declarative
//! [`program::SweepProgram`] — a per-rank, per-thread-role op list —
//! and each execution plane interprets that op stream:
//!
//! * the **functional plane** ([`exec`]) walks it on real data — ranks
//!   are OS threads, messages move through a tag-matching in-process
//!   transport ([`transport`]), and the stencil kernel of `gpaw-grid`
//!   does the arithmetic. Every approach is proven bit-identical to the
//!   sequential reference;
//! * the **timed plane** ([`timed`]) lowers the same ops to cost-model
//!   instructions for the simulated Blue Gene/P (`gpaw-simmpi`), which
//!   is what regenerates the paper's figures at up to 16 384 cores;
//! * the **native plane** (`gpaw-hybrid-rt`, a separate crate) executes
//!   the same ops on real `std::thread`s against a real shared-memory
//!   fabric.
//!
//! The four approaches (§VI of the paper), selected by
//! [`config::Approach`]:
//!
//! | approach | node mode | threads | MPI mode | who communicates |
//! |---|---|---|---|---|
//! | Flat original | virtual | 1/rank | `SINGLE` | each rank, blocking dim-by-dim |
//! | Flat optimized | virtual | 1/rank | `SINGLE` | each rank, non-blocking + batching + double buffering |
//! | Hybrid multiple | SMP | 4 | `MULTIPLE` | every thread, own grids |
//! | Hybrid master-only | SMP | 4 | `SINGLE` | master only; grids computed in 4 slabs with per-grid barrier fences |
//!
//! plus the §VII diagnostic variant [`config::Approach::FlatStatic`] (flat
//! ranks with node-level decomposition and static grid sub-groups — the
//! experiment the paper uses to prove the decomposition granularity, not
//! threading itself, explains the hybrid advantage). Because schedules
//! live in the compiler, `FlatStatic` runs on all three planes with zero
//! plane-specific code.
//!
//! [`runner`] wraps the timed plane into the experiments the benches call
//! (speedup curves, Gustafson sweeps, best-batch searches).

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod checkpoint;
pub mod chrome;
pub mod config;
pub mod durable;
pub mod exec;
pub mod integrity;
pub mod plan;
pub mod progcache;
pub mod program;
pub mod report;
pub mod runner;
pub mod timed;
pub mod trace;
pub mod transport;

pub use checkpoint::{
    gather_epoch, reshard_epoch, shard_layout, CheckpointStore, RegridError, ShardSpec,
};
pub use chrome::ChromeTrace;
pub use config::{Approach, FdConfig};
pub use durable::{DurableError, DurableStore, Recovered, SnapshotRecord};
pub use integrity::{crc32, flip_bit, grids_digest, payload_digest, run_digest};
pub use plan::{decomposition_supports, RankPlan};
pub use progcache::{CacheStats, JobPrograms, ProgramCache, ProgramKey};
pub use program::{
    compile_rank, predicted_logical_span, DirSet, SweepOp, SweepProgram, ThreadRole,
};
pub use report::{ExperimentReport, Json, PointReport};
pub use runner::FdExperiment;
pub use trace::{SpanKind, ThreadSpans, TraceReport, WallTracer};
