//! The sweep-schedule IR: one program, three interpreters.
//!
//! The paper's four programming approaches differ only in *schedule* —
//! who exchanges which halos when, and who synchronizes with whom — while
//! the FD math is identical (§V–VI). This module makes that schedule a
//! first-class value: [`compile_rank`] turns `(FdConfig, CartMap,
//! RankPlan, n_grids, threads)` into one [`SweepProgram`] per thread
//! slot, a flat op list describing a single sweep. The three execution
//! planes are interpreters of that list:
//!
//! * `core::exec` walks it functionally, moving real grid data over the
//!   in-process transport;
//! * `core::timed` lowers each op to cost-model instructions for the
//!   simulated Blue Gene/P;
//! * `hybrid-rt::strategy` executes it on real OS threads against the
//!   `NativeFabric`.
//!
//! Cross-plane parity holds *by construction*: there is no per-plane
//! schedule code to drift. Adding an approach means adding one arm to
//! the compiler — every plane picks it up for free.
//!
//! The ops deliberately say *what* must happen, not *how*: `PostRecv`
//! is a real `Irecv` on the timed plane but a no-op on planes whose
//! transport buffers internally; `ThreadBarrier` is a real
//! `std::sync::Barrier` natively, a simulated barrier instruction on the
//! timed plane, and nothing at all functionally (where the enclosing
//! thread scope already joins). What every interpreter must preserve is
//! the op *order* and the tag/epoch derivation (from [`crate::plan`]).

use crate::config::{Approach, FdConfig};
use crate::plan::{slab_share, Batches, GridAssignment, RankPlan};
use gpaw_bgp_hw::topology::{Axis, LinkDir};
use gpaw_bgp_hw::CartMap;

/// Which directed faces one exchange op covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirSet {
    /// All six faces at once (the non-blocking approaches).
    All,
    /// The two faces of one axis (flat original's blocking dim-by-dim
    /// exchange).
    Axis(Axis),
}

impl DirSet {
    /// The directed faces in this set, in canonical `LinkDir::ALL` order.
    pub fn dirs(self) -> &'static [LinkDir] {
        match self {
            DirSet::All => &LinkDir::ALL,
            // `LinkDir::ALL` is grouped by axis: [X−, X+, Y−, Y+, Z−, Z+].
            DirSet::Axis(a) => {
                let i = a.index();
                &LinkDir::ALL[2 * i..2 * i + 2]
            }
        }
    }
}

/// One step of a sweep schedule.
///
/// `batch` always indexes the program's own [`Batches`] (i.e. positions
/// within the thread's [`GridAssignment`], not global grid ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepOp {
    /// Post the receives for `batch`'s faces in `dirs`.
    PostRecv {
        /// Batch index within the program's batches.
        batch: usize,
        /// Which faces.
        dirs: DirSet,
    },
    /// Pack and send `batch`'s faces in `dirs`.
    SendFace {
        /// Batch index within the program's batches.
        batch: usize,
        /// Which faces.
        dirs: DirSet,
    },
    /// Block until every receive posted for `batch` in `dirs` has landed,
    /// and unpack (or zero-fill faces with no neighbor).
    WaitAll {
        /// Batch index within the program's batches.
        batch: usize,
        /// Which faces.
        dirs: DirSet,
    },
    /// Apply the stencil to every grid of `batch`, whole-subdomain.
    ComputeInterior {
        /// Batch index within the program's batches.
        batch: usize,
    },
    /// Apply the stencil to the `index`-th grid of `batch`, slab-split
    /// across the rank's thread pool and fenced by a release/completion
    /// barrier pair (master-only's compute step). One op ⇒ exactly two
    /// barrier waits per participating thread, which is what makes the
    /// fault plane's barrier-drain arithmetic static.
    ApplyBoundarySlab {
        /// Batch index within the program's batches.
        batch: usize,
        /// Grid position within the batch.
        index: usize,
    },
    /// Synchronize every thread of the rank (hybrid multiple's one
    /// barrier per sweep).
    ThreadBarrier,
    /// End of sweep: swap input/output grid sets.
    AdvanceBuffer,
}

impl SweepOp {
    /// True for the op that closes an epoch (`AdvanceBuffer`): the moment
    /// right after it executes is the checkpointable "after `e` sweeps"
    /// state every plane agrees on.
    pub fn is_epoch_boundary(self) -> bool {
        self == SweepOp::AdvanceBuffer
    }
}

/// What kind of thread executes a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadRole {
    /// The only thread of a flat (virtual-mode) rank.
    Single,
    /// One of hybrid multiple's peer threads, each with its own
    /// communication endpoint.
    Endpoint,
    /// Master-only's communicating thread (also computes slab 0).
    Master,
    /// Master-only's compute-only pool thread.
    PoolWorker {
        /// The thread slot (1-based within the rank; slot 0 is the
        /// master).
        slot: usize,
    },
}

/// The compiled schedule of one thread of one rank, for one sweep.
///
/// Interpreters replay `ops` `sweeps` times; tags and epochs are derived
/// from the current `(sweep, batch)` via [`crate::plan`], so the op list
/// itself is sweep-invariant and compiled exactly once.
#[derive(Debug, Clone)]
pub struct SweepProgram {
    /// What kind of thread runs this program.
    pub role: ThreadRole,
    /// The rank's communication geometry.
    pub plan: RankPlan,
    /// The grids this thread communicates (global ids); for flat static
    /// this is also the subset of grids the rank *owns*.
    pub asg: GridAssignment,
    /// Batch boundaries over `asg` (positions, not global ids).
    pub batches: Batches,
    /// Thread slots on the rank (slab split width for master-only).
    pub threads: usize,
    /// How many times to replay `ops`.
    pub sweeps: usize,
    /// The schedule of one sweep.
    pub ops: Vec<SweepOp>,
}

impl SweepProgram {
    /// Local grid positions (indices into the thread's grid list) of
    /// batch `b`.
    pub fn locals_of(&self, b: usize) -> std::ops::Range<usize> {
        let (s, e) = self.batches.range(b);
        s..e
    }

    /// Global id of the first grid of batch `b` — the tag key both sides
    /// of an exchange agree on.
    pub fn first_global(&self, b: usize) -> usize {
        let (s, e) = self.batches.range(b);
        if s == e {
            0
        } else {
            self.asg.id(s)
        }
    }

    /// The wait epoch of `(sweep, b)`.
    pub fn epoch(&self, sweep: usize, b: usize) -> u32 {
        crate::plan::exchange_epoch(sweep, b, self.batches.len())
    }

    /// This thread's compute share of one grid, as `(points, rows)` —
    /// a slab for master/pool threads, the whole subdomain otherwise.
    pub fn compute_unit(&self) -> (u64, u64) {
        match self.role {
            ThreadRole::Master => slab_share(&self.plan.sub, 0, self.threads),
            ThreadRole::PoolWorker { slot } => slab_share(&self.plan.sub, slot, self.threads),
            _ => {
                let sub = &self.plan.sub;
                (sub.points() as u64, sub.rows() as u64)
            }
        }
    }

    /// Checkpointable epoch boundaries of the program: one per sweep,
    /// marked by the sweep-terminal `AdvanceBuffer` op (`validate()`
    /// enforces exactly one). Epoch `e` means "state after `e` completed
    /// sweeps"; epoch 0 is the initial fill. Recovery replays the program
    /// from any epoch `< epochs()` because tags embed the absolute sweep.
    pub fn epochs(&self) -> usize {
        self.sweeps
    }

    /// Barrier waits one replay of `ops` performs — static per role,
    /// which is what lets the native fault plane drain a failed rank's
    /// barriers without deadlocking its healthy siblings.
    pub fn barrier_waits_per_sweep(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                SweepOp::ThreadBarrier => 1,
                SweepOp::ApplyBoundarySlab { .. } => 2,
                _ => 0,
            })
            .sum()
    }

    /// Messages one replay of `ops` sends from this rank (this thread's
    /// share): one per `SendFace` direction that has a neighbor.
    pub fn messages_per_sweep(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match *op {
                SweepOp::SendFace { dirs, .. } => dirs
                    .dirs()
                    .iter()
                    .filter(|ld| self.plan.neighbors[ld.index()].is_some())
                    .count() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Bytes one replay of `ops` sends from this rank (this thread's
    /// share).
    pub fn bytes_per_sweep(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match *op {
                SweepOp::SendFace { batch, dirs } => {
                    let grids = self.batches.size(batch);
                    dirs.dirs()
                        .iter()
                        .filter(|ld| self.plan.neighbors[ld.index()].is_some())
                        .map(|ld| self.plan.msg_bytes(ld.axis, grids))
                        .sum()
                }
                _ => 0,
            })
            .sum()
    }

    /// Total messages over the whole run (`sweeps` replays).
    pub fn predicted_messages(&self) -> u64 {
        self.messages_per_sweep() * self.sweeps as u64
    }

    /// Total sent bytes over the whole run.
    pub fn predicted_bytes(&self) -> u64 {
        self.bytes_per_sweep() * self.sweeps as u64
    }

    /// Structural well-formedness: the invariants every interpreter
    /// leans on. Returns a description of the first violation.
    ///
    /// * every `PostRecv` is consumed by a later `WaitAll` of the same
    ///   batch (and every `WaitAll`/`SendFace` was posted first);
    /// * nothing is left posted at the end of the sweep (the op list
    ///   replays, so a dangling receive would cross sweeps);
    /// * a batch is fully waited before it is computed;
    /// * the sweep ends with exactly one `AdvanceBuffer`.
    pub fn validate(&self) -> Result<(), String> {
        let nb = self.batches.len();
        // posted[b][dir] / waited[b][dir]
        let mut posted = vec![[false; 6]; nb];
        let mut waited = vec![[false; 6]; nb];
        let mut advanced = false;
        for (i, op) in self.ops.iter().enumerate() {
            if advanced {
                return Err(format!("op {i} {op:?} after AdvanceBuffer"));
            }
            match *op {
                SweepOp::PostRecv { batch, dirs } => {
                    for ld in dirs.dirs() {
                        if posted[batch][ld.index()] {
                            return Err(format!("op {i}: double PostRecv batch {batch} {ld:?}"));
                        }
                        posted[batch][ld.index()] = true;
                    }
                }
                SweepOp::SendFace { batch, dirs } => {
                    for ld in dirs.dirs() {
                        if !posted[batch][ld.index()] {
                            return Err(format!(
                                "op {i}: SendFace before PostRecv, batch {batch} {ld:?}"
                            ));
                        }
                    }
                }
                SweepOp::WaitAll { batch, dirs } => {
                    for ld in dirs.dirs() {
                        if !posted[batch][ld.index()] {
                            return Err(format!(
                                "op {i}: WaitAll without PostRecv, batch {batch} {ld:?}"
                            ));
                        }
                        if waited[batch][ld.index()] {
                            return Err(format!("op {i}: double WaitAll batch {batch} {ld:?}"));
                        }
                        waited[batch][ld.index()] = true;
                    }
                }
                SweepOp::ComputeInterior { batch } | SweepOp::ApplyBoundarySlab { batch, .. } => {
                    if posted[batch] != waited[batch] {
                        return Err(format!("op {i}: compute on un-waited batch {batch}"));
                    }
                    if let SweepOp::ApplyBoundarySlab { index, .. } = *op {
                        if index >= self.batches.size(batch) {
                            return Err(format!(
                                "op {i}: slab index {index} outside batch {batch}"
                            ));
                        }
                    }
                }
                SweepOp::ThreadBarrier => {}
                SweepOp::AdvanceBuffer => advanced = true,
            }
        }
        if !advanced {
            return Err("sweep does not end with AdvanceBuffer".to_string());
        }
        for b in 0..nb {
            if posted[b] != waited[b] {
                return Err(format!("batch {b}: PostRecv left dangling at sweep end"));
            }
        }
        Ok(())
    }
}

/// Compile one rank's schedule: one [`SweepProgram`] per thread slot.
///
/// Flat approaches (single-threaded ranks) get one program; hybrid
/// multiple gets `threads` peer endpoint programs; master-only gets one
/// master plus `threads − 1` pool workers. This is the *only* place in
/// the repo that knows how an approach schedules its sweep.
pub fn compile_rank(
    cfg: &FdConfig,
    map: &CartMap,
    plan: &RankPlan,
    n_grids: usize,
    threads: usize,
) -> Vec<SweepProgram> {
    let mk = |role: ThreadRole, t: usize| -> SweepProgram {
        let asg = RankPlan::assignment(cfg.approach, n_grids, map, plan.rank, t, threads);
        let batches = Batches::build(asg.count, cfg);
        let ops = emit_ops(cfg, role, &batches, asg.count);
        SweepProgram {
            role,
            plan: plan.clone(),
            asg,
            batches,
            threads,
            sweeps: cfg.sweeps,
            ops,
        }
    };
    match cfg.approach {
        Approach::FlatOriginal | Approach::FlatOptimized | Approach::FlatStatic => {
            vec![mk(ThreadRole::Single, 0)]
        }
        Approach::HybridMultiple => (0..threads).map(|t| mk(ThreadRole::Endpoint, t)).collect(),
        Approach::HybridMasterOnly => (0..threads)
            .map(|t| {
                if t == 0 {
                    mk(ThreadRole::Master, 0)
                } else {
                    mk(ThreadRole::PoolWorker { slot: t }, t)
                }
            })
            .collect(),
    }
}

/// Emit the op list for one role. `count` is the thread's grid count —
/// a zero-grid thread still participates in its role's barriers.
fn emit_ops(cfg: &FdConfig, role: ThreadRole, batches: &Batches, count: usize) -> Vec<SweepOp> {
    let mut ops = Vec::new();
    let compute = |ops: &mut Vec<SweepOp>, b: usize| match role {
        ThreadRole::Master => {
            for index in 0..batches.size(b) {
                ops.push(SweepOp::ApplyBoundarySlab { batch: b, index });
            }
        }
        _ => ops.push(SweepOp::ComputeInterior { batch: b }),
    };
    match role {
        ThreadRole::PoolWorker { .. } => {
            // Compute-only: mirror the master's fence sequence, nothing
            // else. (`Batches::build` never yields an empty batch when
            // `count > 0`.)
            if count > 0 {
                for b in 0..batches.len() {
                    for index in 0..batches.size(b) {
                        ops.push(SweepOp::ApplyBoundarySlab { batch: b, index });
                    }
                }
            }
        }
        ThreadRole::Single if cfg.approach == Approach::FlatOriginal => {
            // Blocking, dimension-by-dimension, one grid per batch —
            // GPAW's original scheme (§V-B).
            for b in 0..batches.len() {
                if batches.size(b) == 0 {
                    continue;
                }
                for axis in Axis::ALL {
                    let dirs = DirSet::Axis(axis);
                    ops.push(SweepOp::PostRecv { batch: b, dirs });
                    ops.push(SweepOp::SendFace { batch: b, dirs });
                    ops.push(SweepOp::WaitAll { batch: b, dirs });
                }
                compute(&mut ops, b);
            }
        }
        _ => {
            // The non-blocking batched pipeline shared by flat optimized,
            // flat static, hybrid multiple endpoints, and the master-only
            // comm thread: optionally double-buffered so batch `b+1`'s
            // exchange is in flight while `b` computes (§V-A).
            if count > 0 {
                let n = batches.len();
                let all = DirSet::All;
                if cfg.double_buffer {
                    ops.push(SweepOp::PostRecv {
                        batch: 0,
                        dirs: all,
                    });
                    ops.push(SweepOp::SendFace {
                        batch: 0,
                        dirs: all,
                    });
                    for b in 0..n {
                        if b + 1 < n {
                            ops.push(SweepOp::PostRecv {
                                batch: b + 1,
                                dirs: all,
                            });
                            ops.push(SweepOp::SendFace {
                                batch: b + 1,
                                dirs: all,
                            });
                        }
                        ops.push(SweepOp::WaitAll {
                            batch: b,
                            dirs: all,
                        });
                        compute(&mut ops, b);
                    }
                } else {
                    for b in 0..n {
                        ops.push(SweepOp::PostRecv {
                            batch: b,
                            dirs: all,
                        });
                        ops.push(SweepOp::SendFace {
                            batch: b,
                            dirs: all,
                        });
                        ops.push(SweepOp::WaitAll {
                            batch: b,
                            dirs: all,
                        });
                        compute(&mut ops, b);
                    }
                }
            }
        }
    }
    if role == ThreadRole::Endpoint {
        // Hybrid multiple's single synchronization point per sweep; a
        // zero-grid endpoint still takes it.
        ops.push(SweepOp::ThreadBarrier);
    }
    ops.push(SweepOp::AdvanceBuffer);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpaw_bgp_hw::{CartMap, Partition};

    fn programs(
        cfg: &FdConfig,
        nodes: usize,
        grid: [usize; 3],
        n_grids: usize,
    ) -> Vec<SweepProgram> {
        let p = Partition::standard(nodes, cfg.approach.exec_mode()).unwrap();
        let map = CartMap::best(p, grid);
        let threads = map.partition.threads_per_process();
        let plan = RankPlan::for_rank(&map, grid, 0, 8, cfg);
        compile_rank(cfg, &map, &plan, n_grids, threads)
    }

    fn all_approaches() -> [Approach; 5] {
        [
            Approach::FlatOriginal,
            Approach::FlatOptimized,
            Approach::FlatStatic,
            Approach::HybridMultiple,
            Approach::HybridMasterOnly,
        ]
    }

    #[test]
    fn every_approach_compiles_well_formed_programs() {
        for approach in all_approaches() {
            let cfg = FdConfig::paper(approach).with_batch(4).with_sweeps(2);
            for prog in programs(&cfg, 8, [32, 32, 32], 10) {
                prog.validate()
                    .unwrap_or_else(|e| panic!("{approach:?} {:?}: {e}", prog.role));
            }
        }
    }

    #[test]
    fn roles_match_the_approach() {
        let cfg = FdConfig::paper(Approach::HybridMasterOnly);
        let progs = programs(&cfg, 8, [32, 32, 32], 8);
        assert_eq!(progs.len(), 4);
        assert_eq!(progs[0].role, ThreadRole::Master);
        for (t, p) in progs.iter().enumerate().skip(1) {
            assert_eq!(p.role, ThreadRole::PoolWorker { slot: t });
        }
        let cfg = FdConfig::paper(Approach::HybridMultiple);
        let progs = programs(&cfg, 8, [32, 32, 32], 8);
        assert_eq!(progs.len(), 4);
        assert!(progs.iter().all(|p| p.role == ThreadRole::Endpoint));
        for a in [
            Approach::FlatOriginal,
            Approach::FlatOptimized,
            Approach::FlatStatic,
        ] {
            let cfg = FdConfig::paper(a);
            let progs = programs(&cfg, 8, [32, 32, 32], 8);
            assert_eq!(progs.len(), 1);
            assert_eq!(progs[0].role, ThreadRole::Single);
        }
    }

    #[test]
    fn barrier_counts_are_static_per_role() {
        // Hybrid multiple: one barrier per sweep per endpoint, even for
        // endpoints that own zero grids. Master-only: two waits per grid
        // (release + completion), identical across master and workers.
        let cfg = FdConfig::paper(Approach::HybridMultiple).with_batch(4);
        for prog in programs(&cfg, 8, [32, 32, 32], 2) {
            assert_eq!(prog.barrier_waits_per_sweep(), 1, "{:?}", prog.role);
        }
        let cfg = FdConfig::paper(Approach::HybridMasterOnly).with_batch(4);
        let progs = programs(&cfg, 8, [32, 32, 32], 10);
        let waits: Vec<usize> = progs.iter().map(|p| p.barrier_waits_per_sweep()).collect();
        assert!(waits.iter().all(|&w| w == 2 * 10), "{waits:?}");
    }

    #[test]
    fn single_rank_zero_bc_has_no_neighbors_and_sends_nothing() {
        // Edge geometry 1: one rank, zero boundaries ⇒ no neighbors, so
        // the compiled program predicts zero traffic yet stays
        // well-formed (receives are still posted and waited — they
        // resolve to zero-fill).
        for approach in all_approaches() {
            let mut cfg = FdConfig::paper(approach).with_batch(3);
            cfg.bc = gpaw_grid::stencil::BoundaryCond::Zero;
            let nodes = 1;
            let p = Partition::standard(nodes, approach.exec_mode()).unwrap();
            let map = CartMap::best(p, [16, 16, 16]);
            let threads = map.partition.threads_per_process();
            let ranks = map.ranks();
            for rank in 0..ranks {
                let plan = RankPlan::for_rank(&map, [16, 16, 16], rank, 8, &cfg);
                for prog in compile_rank(&cfg, &map, &plan, 6, threads) {
                    prog.validate().unwrap();
                    if ranks == 1 {
                        assert!(plan.neighbors.iter().all(Option::is_none));
                        assert_eq!(prog.predicted_messages(), 0);
                        assert_eq!(prog.predicted_bytes(), 0);
                    }
                }
            }
        }
    }

    #[test]
    fn batch_larger_than_grid_count_collapses_to_one_batch() {
        // Edge geometry 2: batch 32 over 3 grids ⇒ one batch, programs
        // well-formed, double-buffering degenerates gracefully.
        for approach in all_approaches() {
            let cfg = FdConfig::paper(approach).with_batch(32);
            for prog in programs(&cfg, 8, [32, 32, 32], 3) {
                prog.validate().unwrap();
                if approach != Approach::FlatOriginal {
                    // Flat original's effective batch is pinned to 1, so it
                    // keeps one batch per grid; everyone else collapses.
                    assert!(prog.batches.len() <= 1, "{approach:?}: {:?}", prog.batches);
                }
            }
        }
    }

    #[test]
    fn more_threads_than_grids_leaves_idle_endpoints_well_formed() {
        // Edge geometry 3: 2 grids over 4 endpoint threads ⇒ two
        // endpoints own nothing but still barrier once per sweep.
        let cfg = FdConfig::paper(Approach::HybridMultiple).with_batch(8);
        let progs = programs(&cfg, 8, [32, 32, 32], 2);
        assert_eq!(progs.len(), 4);
        let empty: Vec<&SweepProgram> = progs.iter().filter(|p| p.asg.count == 0).collect();
        assert_eq!(empty.len(), 2);
        for prog in &progs {
            prog.validate().unwrap();
            assert_eq!(prog.barrier_waits_per_sweep(), 1);
            if prog.asg.count == 0 {
                assert_eq!(prog.predicted_messages(), 0);
                assert_eq!(
                    prog.ops,
                    vec![SweepOp::ThreadBarrier, SweepOp::AdvanceBuffer]
                );
            }
        }
    }

    #[test]
    fn flat_original_exchanges_axis_by_axis() {
        let cfg = FdConfig::paper(Approach::FlatOriginal);
        let progs = programs(&cfg, 8, [32, 32, 32], 2);
        let prog = &progs[0];
        // One grid per batch (effective batch 1), three blocking axis
        // exchanges each: 6 sends per grid per sweep on a periodic plan.
        assert_eq!(prog.batches.len(), 2);
        assert_eq!(prog.messages_per_sweep(), 12);
        assert!(prog.ops.iter().all(|op| !matches!(
            op,
            SweepOp::SendFace {
                dirs: DirSet::All,
                ..
            }
        )));
    }

    #[test]
    fn double_buffer_pipelines_the_next_batch() {
        let cfg = FdConfig::paper(Approach::FlatOptimized).with_batch(2);
        let progs = programs(&cfg, 8, [32, 32, 32], 6);
        let ops = &progs[0].ops;
        // Batch 1's sends are issued before batch 0 is waited on.
        let send1 = ops
            .iter()
            .position(|op| matches!(op, SweepOp::SendFace { batch: 1, .. }))
            .unwrap();
        let wait0 = ops
            .iter()
            .position(|op| matches!(op, SweepOp::WaitAll { batch: 0, .. }))
            .unwrap();
        assert!(send1 < wait0, "{ops:?}");
    }

    #[test]
    fn predicted_traffic_matches_hand_count() {
        // 8 nodes periodic, batch 4 over 8 grids ⇒ 2 batches; all six
        // neighbors exist ⇒ 12 messages/sweep for a flat-optimized rank.
        let cfg = FdConfig::paper(Approach::FlatOptimized)
            .with_batch(4)
            .with_sweeps(3);
        let progs = programs(&cfg, 8, [32, 32, 32], 8);
        let prog = &progs[0];
        assert_eq!(prog.messages_per_sweep(), 12);
        assert_eq!(prog.predicted_messages(), 36);
        let per_axis: u64 = (0..3)
            .map(|a| 2 * prog.plan.msg_bytes(Axis::ALL[a], 4))
            .sum();
        assert_eq!(prog.bytes_per_sweep(), 2 * per_axis);
    }
}
