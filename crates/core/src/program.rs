//! The sweep-schedule IR: one program, three interpreters.
//!
//! The paper's four programming approaches differ only in *schedule* —
//! who exchanges which halos when, and who synchronizes with whom — while
//! the FD math is identical (§V–VI). This module makes that schedule a
//! first-class value: [`compile_rank`] turns `(FdConfig, CartMap,
//! RankPlan, n_grids, threads)` into one [`SweepProgram`] per thread
//! slot, a flat op list describing a single sweep. The three execution
//! planes are interpreters of that list:
//!
//! * `core::exec` walks it functionally, moving real grid data over the
//!   in-process transport;
//! * `core::timed` lowers each op to cost-model instructions for the
//!   simulated Blue Gene/P;
//! * `hybrid-rt::strategy` executes it on real OS threads against the
//!   `NativeFabric`.
//!
//! Cross-plane parity holds *by construction*: there is no per-plane
//! schedule code to drift. Adding an approach means adding one arm to
//! the compiler — every plane picks it up for free.
//!
//! The ops deliberately say *what* must happen, not *how*: `PostRecv`
//! is a real `Irecv` on the timed plane but a no-op on planes whose
//! transport buffers internally; `ThreadBarrier` is a real
//! `std::sync::Barrier` natively, a simulated barrier instruction on the
//! timed plane, and nothing at all functionally (where the enclosing
//! thread scope already joins). What every interpreter must preserve is
//! the op *order* and the tag/epoch derivation (from [`crate::plan`]).
//!
//! Since the temporal-blocking refactor the exchange ops carry their
//! ghost `depth` explicitly and one replay of `ops` advances
//! [`SweepProgram::block`] sweeps: a fused program exchanges depth
//! `block · h` ghosts once, then applies the stencil `block` times at
//! successively shrinking extents ([`SweepOp::ComputeWavefront`]).

use crate::config::{Approach, FdConfig};
use crate::plan::{slab_share, Batches, GridAssignment, RankPlan};
use gpaw_bgp_hw::topology::{Axis, LinkDir};
use gpaw_bgp_hw::CartMap;
use gpaw_grid::stencil::StencilCoeffs;

/// Which directed faces one exchange op covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirSet {
    /// All six faces at once (the non-blocking approaches).
    All,
    /// The two faces of one axis (flat original's blocking dim-by-dim
    /// exchange, and the fused schedule's ordered ghost-forwarding
    /// exchange).
    Axis(Axis),
}

impl DirSet {
    /// The directed faces in this set, in canonical `LinkDir::ALL` order.
    pub fn dirs(self) -> &'static [LinkDir] {
        match self {
            DirSet::All => &LinkDir::ALL,
            // `LinkDir::ALL` is grouped by axis: [X−, X+, Y−, Y+, Z−, Z+].
            DirSet::Axis(a) => {
                let i = a.index();
                &LinkDir::ALL[2 * i..2 * i + 2]
            }
        }
    }
}

/// One step of a sweep schedule.
///
/// `batch` always indexes the program's own [`Batches`] (i.e. positions
/// within the thread's [`GridAssignment`], not global grid ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepOp {
    /// Post the receives for `batch`'s faces in `dirs`, `depth` ghost
    /// planes deep.
    PostRecv {
        /// Batch index within the program's batches.
        batch: usize,
        /// Which faces.
        dirs: DirSet,
        /// Ghost planes per face (the plan's exchange depth).
        depth: usize,
    },
    /// Pack and send `batch`'s faces in `dirs`, `depth` ghost planes
    /// deep. A fused-schedule send along axis `a` also packs the ghost
    /// cross-section of every axis `< a` (already exchanged this replay),
    /// forwarding edge/corner ghosts without diagonal messages.
    SendFace {
        /// Batch index within the program's batches.
        batch: usize,
        /// Which faces.
        dirs: DirSet,
        /// Ghost planes per face (the plan's exchange depth).
        depth: usize,
    },
    /// Block until every receive posted for `batch` in `dirs` has landed,
    /// and unpack (or zero-fill faces with no neighbor).
    WaitAll {
        /// Batch index within the program's batches.
        batch: usize,
        /// Which faces.
        dirs: DirSet,
        /// Ghost planes per face (the plan's exchange depth).
        depth: usize,
    },
    /// Apply the stencil to every grid of `batch`, whole-subdomain.
    ComputeInterior {
        /// Batch index within the program's batches.
        batch: usize,
    },
    /// Apply one step of a fused temporal block to every grid of
    /// `batch`: compute the subdomain *extended* by
    /// `shrink · (block − 1 − step)` ghost planes per side (clamped to
    /// zero extension at faces with no neighbor). Step 0 computes the
    /// widest box from freshly exchanged depth-`block·shrink` ghosts;
    /// each later step consumes `shrink` planes of what the previous
    /// step produced; the last step lands exactly on the subdomain.
    ComputeWavefront {
        /// Batch index within the program's batches.
        batch: usize,
        /// Position within the fused block (`0..block`).
        step: usize,
        /// Ghost planes consumed per step (the stencil halo).
        shrink: usize,
    },
    /// Apply the stencil to the `index`-th grid of `batch`, slab-split
    /// across the rank's thread pool and fenced by a release/completion
    /// barrier pair (master-only's compute step). One op ⇒ exactly two
    /// barrier waits per participating thread, which is what makes the
    /// fault plane's barrier-drain arithmetic static.
    ApplyBoundarySlab {
        /// Batch index within the program's batches.
        batch: usize,
        /// Grid position within the batch.
        index: usize,
    },
    /// Synchronize every thread of the rank (hybrid multiple's one
    /// barrier per sweep).
    ThreadBarrier,
    /// End of replay: swap input/output grid sets if the replay computed
    /// an odd number of sweeps (a fused block of even `block` lands its
    /// result back in the input buffers).
    AdvanceBuffer,
}

impl SweepOp {
    /// True for the op that closes an epoch (`AdvanceBuffer`): the moment
    /// right after it executes is the checkpointable "after `e` sweeps"
    /// state every plane agrees on.
    pub fn is_epoch_boundary(self) -> bool {
        self == SweepOp::AdvanceBuffer
    }
}

/// What kind of thread executes a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadRole {
    /// The only thread of a flat (virtual-mode) rank.
    Single,
    /// One of hybrid multiple's (or temporal blocked's) peer threads,
    /// each with its own communication endpoint.
    Endpoint,
    /// Master-only's communicating thread (also computes slab 0).
    Master,
    /// Master-only's compute-only pool thread.
    PoolWorker {
        /// The thread slot (1-based within the rank; slot 0 is the
        /// master).
        slot: usize,
    },
}

/// A structural defect [`SweepProgram::validate`] found — the schedule
/// compiler's type system. Each variant names the invariant an
/// interpreter would otherwise trip over at runtime (or worse, turn
/// into a silent bitwise diff).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// An op appears after the replay-terminal `AdvanceBuffer`.
    OpAfterAdvance {
        /// Op index.
        op: usize,
    },
    /// The same `(batch, dir)` receive was posted twice without a wait.
    DoublePostRecv {
        /// Op index.
        op: usize,
        /// Batch index.
        batch: usize,
        /// Directed face.
        dir: LinkDir,
    },
    /// A send was issued before its matching receive was posted (a
    /// rendezvous deadlock on the timed plane).
    SendBeforePost {
        /// Op index.
        op: usize,
        /// Batch index.
        batch: usize,
        /// Directed face.
        dir: LinkDir,
    },
    /// A wait references a `(batch, dir)` that was never posted.
    WaitWithoutPost {
        /// Op index.
        op: usize,
        /// Batch index.
        batch: usize,
        /// Directed face.
        dir: LinkDir,
    },
    /// A wait on a `(batch, dir)` whose own send was never issued: in an
    /// SPMD schedule every rank runs the same ops, so the neighbor is
    /// equally waiting and nobody sends — a guaranteed deadlock.
    WaitBeforeSend {
        /// Op index.
        op: usize,
        /// Batch index.
        batch: usize,
        /// Directed face.
        dir: LinkDir,
    },
    /// The same `(batch, dir)` was waited twice.
    DoubleWait {
        /// Op index.
        op: usize,
        /// Batch index.
        batch: usize,
        /// Directed face.
        dir: LinkDir,
    },
    /// An exchange op's `depth` disagrees with the plan's exchange depth
    /// (its face buffers would be mis-sized on every plane).
    DepthMismatch {
        /// Op index.
        op: usize,
        /// The op's depth.
        depth: usize,
        /// The plan's exchange depth.
        plan: usize,
    },
    /// A compute op ran on a batch with posted-but-unwaited receives.
    ComputeUnwaited {
        /// Op index.
        op: usize,
        /// Batch index.
        batch: usize,
    },
    /// A slab compute indexed past the end of its batch.
    SlabOutOfRange {
        /// Op index.
        op: usize,
        /// Batch index.
        batch: usize,
        /// Offending grid position.
        index: usize,
    },
    /// Wavefront steps of a batch are not contiguous ascending from 0.
    WavefrontOrder {
        /// Op index.
        op: usize,
        /// Batch index.
        batch: usize,
        /// The op's step.
        step: usize,
        /// The step the sequence requires next.
        expected: usize,
    },
    /// A wavefront op's `shrink` differs from the stencil halo.
    WavefrontShrink {
        /// Op index.
        op: usize,
        /// The op's shrink.
        shrink: usize,
        /// The required shrink.
        expected: usize,
    },
    /// A batch's wavefront ended short of the program's block.
    WavefrontIncomplete {
        /// Batch index.
        batch: usize,
        /// Steps emitted.
        steps: usize,
        /// Steps required (the block).
        block: usize,
    },
    /// `AdvanceBuffer` executed with receives still outstanding — the op
    /// list replays, so the dangling receive would cross replays.
    AdvanceWithOutstanding {
        /// Batch index.
        batch: usize,
    },
    /// The replay does not end with `AdvanceBuffer`.
    MissingAdvance,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use ValidationError::*;
        match *self {
            OpAfterAdvance { op } => write!(f, "op {op}: op after AdvanceBuffer"),
            DoublePostRecv { op, batch, dir } => {
                write!(f, "op {op}: double PostRecv batch {batch} {dir:?}")
            }
            SendBeforePost { op, batch, dir } => {
                write!(
                    f,
                    "op {op}: SendFace before PostRecv, batch {batch} {dir:?}"
                )
            }
            WaitWithoutPost { op, batch, dir } => {
                write!(
                    f,
                    "op {op}: WaitAll without PostRecv, batch {batch} {dir:?}"
                )
            }
            WaitBeforeSend { op, batch, dir } => write!(
                f,
                "op {op}: WaitAll before SendFace, batch {batch} {dir:?} (SPMD deadlock)"
            ),
            DoubleWait { op, batch, dir } => {
                write!(f, "op {op}: double WaitAll batch {batch} {dir:?}")
            }
            DepthMismatch { op, depth, plan } => {
                write!(f, "op {op}: exchange depth {depth} != plan depth {plan}")
            }
            ComputeUnwaited { op, batch } => {
                write!(f, "op {op}: compute on un-waited batch {batch}")
            }
            SlabOutOfRange { op, batch, index } => {
                write!(f, "op {op}: slab index {index} outside batch {batch}")
            }
            WavefrontOrder {
                op,
                batch,
                step,
                expected,
            } => write!(
                f,
                "op {op}: wavefront step {step} of batch {batch}, expected {expected}"
            ),
            WavefrontShrink {
                op,
                shrink,
                expected,
            } => write!(f, "op {op}: wavefront shrink {shrink}, expected {expected}"),
            WavefrontIncomplete {
                batch,
                steps,
                block,
            } => write!(
                f,
                "batch {batch}: wavefront stopped at step {steps} of block {block}"
            ),
            AdvanceWithOutstanding { batch } => {
                write!(
                    f,
                    "AdvanceBuffer with batch {batch}'s PostRecv left dangling"
                )
            }
            MissingAdvance => write!(f, "sweep does not end with AdvanceBuffer"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// The compiled schedule of one thread of one rank, for one replay.
///
/// Interpreters replay `ops` [`SweepProgram::replays`] times — each
/// replay advances [`SweepProgram::block`] sweeps; tags and epochs are
/// derived from the current `(sweep, batch)` via [`crate::plan`], so the
/// op list itself is replay-invariant and compiled exactly once.
#[derive(Debug, Clone)]
pub struct SweepProgram {
    /// What kind of thread runs this program.
    pub role: ThreadRole,
    /// The rank's communication geometry.
    pub plan: RankPlan,
    /// The grids this thread communicates (global ids); for flat static
    /// this is also the subset of grids the rank *owns*.
    pub asg: GridAssignment,
    /// Batch boundaries over `asg` (positions, not global ids).
    pub batches: Batches,
    /// Thread slots on the rank (slab split width for master-only).
    pub threads: usize,
    /// Total sweeps of the run (replays × block).
    pub sweeps: usize,
    /// The schedule of one replay.
    pub ops: Vec<SweepOp>,
}

impl SweepProgram {
    /// Sweeps one replay of `ops` advances (the fused temporal block;
    /// 1 for every non-blocked approach).
    pub fn block(&self) -> usize {
        self.plan.block
    }

    /// How many times interpreters replay `ops`.
    pub fn replays(&self) -> usize {
        debug_assert_eq!(self.sweeps % self.block(), 0);
        self.sweeps / self.block()
    }

    /// Local grid positions (indices into the thread's grid list) of
    /// batch `b`.
    pub fn locals_of(&self, b: usize) -> std::ops::Range<usize> {
        let (s, e) = self.batches.range(b);
        s..e
    }

    /// Global id of the first grid of batch `b` — the tag key both sides
    /// of an exchange agree on.
    pub fn first_global(&self, b: usize) -> usize {
        let (s, e) = self.batches.range(b);
        if s == e {
            0
        } else {
            self.asg.id(s)
        }
    }

    /// The wait epoch of `(sweep, b)`. For fused programs `sweep` is the
    /// block's base sweep, so the three axis waits of one `(block,
    /// batch)` share a single epoch value.
    pub fn epoch(&self, sweep: usize, b: usize) -> u32 {
        crate::plan::exchange_epoch(sweep, b, self.batches.len())
    }

    /// This thread's compute share of one grid, as `(points, rows)` —
    /// a slab for master/pool threads, the whole subdomain otherwise.
    pub fn compute_unit(&self) -> (u64, u64) {
        match self.role {
            ThreadRole::Master => slab_share(&self.plan.sub, 0, self.threads),
            ThreadRole::PoolWorker { slot } => slab_share(&self.plan.sub, slot, self.threads),
            _ => {
                let sub = &self.plan.sub;
                (sub.points() as u64, sub.rows() as u64)
            }
        }
    }

    /// Checkpointable epoch boundaries of the program. Epoch `e` means
    /// "state after `e` completed sweeps"; epoch 0 is the initial fill.
    /// The replay-terminal `AdvanceBuffer` marks them (`validate()`
    /// enforces exactly one), so a fused program's checkpointable epochs
    /// are the multiples of [`SweepProgram::block`] — recovery resumes
    /// from any such epoch `< epochs()` because tags embed the block's
    /// absolute base sweep.
    pub fn epochs(&self) -> usize {
        self.sweeps
    }

    /// Barrier waits one replay of `ops` performs — static per role,
    /// which is what lets the native fault plane drain a failed rank's
    /// barriers without deadlocking its healthy siblings.
    pub fn barrier_waits_per_sweep(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                SweepOp::ThreadBarrier => 1,
                SweepOp::ApplyBoundarySlab { .. } => 2,
                _ => 0,
            })
            .sum()
    }

    /// Messages one replay of `ops` sends from this rank (this thread's
    /// share): one per `SendFace` direction that has a neighbor.
    pub fn messages_per_sweep(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match *op {
                SweepOp::SendFace { dirs, .. } => dirs
                    .dirs()
                    .iter()
                    .filter(|ld| self.plan.neighbors[ld.index()].is_some())
                    .count() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Bytes one replay of `ops` sends from this rank (this thread's
    /// share).
    pub fn bytes_per_sweep(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match *op {
                SweepOp::SendFace { batch, dirs, .. } => {
                    let grids = self.batches.size(batch);
                    dirs.dirs()
                        .iter()
                        .filter(|ld| self.plan.neighbors[ld.index()].is_some())
                        .map(|ld| self.plan.msg_bytes(ld.axis, grids))
                        .sum()
                }
                _ => 0,
            })
            .sum()
    }

    /// Total messages over the whole run ([`SweepProgram::replays`]
    /// replays — a fused program replays `sweeps / block` times, which
    /// is where temporal blocking's message reduction shows up).
    pub fn predicted_messages(&self) -> u64 {
        self.messages_per_sweep() * self.replays() as u64
    }

    /// Total sent bytes over the whole run.
    pub fn predicted_bytes(&self) -> u64 {
        self.bytes_per_sweep() * self.replays() as u64
    }

    /// Distinct exchange epochs this thread's run produces: batches that
    /// wait at least once, times replays. All `WaitAll` ops of one
    /// `(replay, batch)` — e.g. the fused schedule's three ordered axis
    /// waits — share one epoch value, so a `TemporalBlocked(k)` run has
    /// `1/k` the epochs of `HybridMultiple` at equal sweep count.
    pub fn exchange_epochs(&self) -> u64 {
        let mut waits = vec![false; self.batches.len()];
        for op in &self.ops {
            if let SweepOp::WaitAll { batch, .. } = *op {
                waits[batch] = true;
            }
        }
        waits.iter().filter(|&&w| w).count() as u64 * self.replays() as u64
    }

    /// Structural well-formedness: the invariants every interpreter
    /// leans on. Returns the first violation as a typed error.
    ///
    /// * every `PostRecv` is consumed by a later `WaitAll` of the same
    ///   batch (and every `WaitAll`/`SendFace` was posted first);
    /// * every `WaitAll` follows its own side's `SendFace` (the SPMD
    ///   deadlock catcher: if we haven't sent, neither has the
    ///   identically-scheduled neighbor);
    /// * exchange depths match the plan's;
    /// * a batch is fully waited before it is computed;
    /// * wavefront steps run contiguously `0..block` with the stencil
    ///   halo's shrink;
    /// * nothing is left posted at `AdvanceBuffer` (the op list replays,
    ///   so a dangling receive would cross replays);
    /// * the replay ends with exactly one `AdvanceBuffer`.
    pub fn validate(&self) -> Result<(), ValidationError> {
        use ValidationError as E;
        let nb = self.batches.len();
        let block = self.block();
        // posted[b][dir] / sent[b][dir] / waited[b][dir]
        let mut posted = vec![[false; 6]; nb];
        let mut sent = vec![[false; 6]; nb];
        let mut waited = vec![[false; 6]; nb];
        let mut wf_next = vec![0usize; nb];
        let mut advanced = false;
        for (i, op) in self.ops.iter().enumerate() {
            if advanced {
                return Err(E::OpAfterAdvance { op: i });
            }
            match *op {
                SweepOp::PostRecv { batch, dirs, depth } => {
                    if depth != self.plan.halo {
                        return Err(E::DepthMismatch {
                            op: i,
                            depth,
                            plan: self.plan.halo,
                        });
                    }
                    for ld in dirs.dirs() {
                        if posted[batch][ld.index()] {
                            return Err(E::DoublePostRecv {
                                op: i,
                                batch,
                                dir: *ld,
                            });
                        }
                        posted[batch][ld.index()] = true;
                    }
                }
                SweepOp::SendFace { batch, dirs, depth } => {
                    if depth != self.plan.halo {
                        return Err(E::DepthMismatch {
                            op: i,
                            depth,
                            plan: self.plan.halo,
                        });
                    }
                    for ld in dirs.dirs() {
                        if !posted[batch][ld.index()] {
                            return Err(E::SendBeforePost {
                                op: i,
                                batch,
                                dir: *ld,
                            });
                        }
                        sent[batch][ld.index()] = true;
                    }
                }
                SweepOp::WaitAll { batch, dirs, depth } => {
                    if depth != self.plan.halo {
                        return Err(E::DepthMismatch {
                            op: i,
                            depth,
                            plan: self.plan.halo,
                        });
                    }
                    for ld in dirs.dirs() {
                        if !posted[batch][ld.index()] {
                            return Err(E::WaitWithoutPost {
                                op: i,
                                batch,
                                dir: *ld,
                            });
                        }
                        if !sent[batch][ld.index()] {
                            return Err(E::WaitBeforeSend {
                                op: i,
                                batch,
                                dir: *ld,
                            });
                        }
                        if waited[batch][ld.index()] {
                            return Err(E::DoubleWait {
                                op: i,
                                batch,
                                dir: *ld,
                            });
                        }
                        waited[batch][ld.index()] = true;
                    }
                }
                SweepOp::ComputeInterior { batch } | SweepOp::ApplyBoundarySlab { batch, .. } => {
                    if posted[batch] != waited[batch] {
                        return Err(E::ComputeUnwaited { op: i, batch });
                    }
                    if let SweepOp::ApplyBoundarySlab { index, .. } = *op {
                        if index >= self.batches.size(batch) {
                            return Err(E::SlabOutOfRange {
                                op: i,
                                batch,
                                index,
                            });
                        }
                    }
                }
                SweepOp::ComputeWavefront {
                    batch,
                    step,
                    shrink,
                } => {
                    if posted[batch] != waited[batch] {
                        return Err(E::ComputeUnwaited { op: i, batch });
                    }
                    if shrink != StencilCoeffs::HALO {
                        return Err(E::WavefrontShrink {
                            op: i,
                            shrink,
                            expected: StencilCoeffs::HALO,
                        });
                    }
                    if step != wf_next[batch] || step >= block {
                        return Err(E::WavefrontOrder {
                            op: i,
                            batch,
                            step,
                            expected: wf_next[batch],
                        });
                    }
                    wf_next[batch] += 1;
                }
                SweepOp::ThreadBarrier => {}
                SweepOp::AdvanceBuffer => {
                    for b in 0..nb {
                        if posted[b] != waited[b] {
                            return Err(E::AdvanceWithOutstanding { batch: b });
                        }
                    }
                    advanced = true;
                }
            }
        }
        if !advanced {
            return Err(E::MissingAdvance);
        }
        for (b, &steps) in wf_next.iter().enumerate() {
            if steps > 0 && steps != block {
                return Err(E::WavefrontIncomplete {
                    batch: b,
                    steps,
                    block,
                });
            }
        }
        Ok(())
    }
}

/// Logical `(messages, bytes)` every rank of `programs` sends for the
/// sweep span `from_epoch..to_epoch` — the statically-known traffic of
/// those completed epochs, summed over every thread slot. A fused
/// program exchanges once per `block` sweeps, so the span contributes
/// `to/block − from/block` replays; spans are expected to start and end
/// on replay boundaries (deposits only happen there).
///
/// This is the arithmetic the durable layer uses to seed a restored
/// fabric and the degradation plane uses to report (and the tests to
/// verify, exactly) per-geometry-segment traffic.
pub fn predicted_logical_span(
    programs: &[Vec<SweepProgram>],
    from_epoch: usize,
    to_epoch: usize,
) -> (u64, u64) {
    let mut messages = 0u64;
    let mut bytes = 0u64;
    for progs in programs {
        for prog in progs {
            let block = prog.block();
            let replays = (to_epoch / block).saturating_sub(from_epoch / block) as u64;
            messages += prog.messages_per_sweep() * replays;
            bytes += prog.bytes_per_sweep() * replays;
        }
    }
    (messages, bytes)
}

/// Compile one rank's schedule: one [`SweepProgram`] per thread slot.
///
/// Flat approaches (single-threaded ranks) get one program; hybrid
/// multiple and temporal blocked get `threads` peer endpoint programs;
/// master-only gets one master plus `threads − 1` pool workers. This is
/// the *only* place in the repo that knows how an approach schedules
/// its sweep.
pub fn compile_rank(
    cfg: &FdConfig,
    map: &CartMap,
    plan: &RankPlan,
    n_grids: usize,
    threads: usize,
) -> Vec<SweepProgram> {
    let mk = |role: ThreadRole, t: usize| -> SweepProgram {
        let asg = RankPlan::assignment(cfg.approach, n_grids, map, plan.rank, t, threads);
        let batches = Batches::build(asg.count, cfg);
        let ops = emit_ops(cfg, role, &batches, asg.count);
        SweepProgram {
            role,
            plan: plan.clone(),
            asg,
            batches,
            threads,
            sweeps: cfg.sweeps,
            ops,
        }
    };
    match cfg.approach {
        Approach::FlatOriginal | Approach::FlatOptimized | Approach::FlatStatic => {
            vec![mk(ThreadRole::Single, 0)]
        }
        Approach::HybridMultiple | Approach::TemporalBlocked => {
            (0..threads).map(|t| mk(ThreadRole::Endpoint, t)).collect()
        }
        Approach::HybridMasterOnly => (0..threads)
            .map(|t| {
                if t == 0 {
                    mk(ThreadRole::Master, 0)
                } else {
                    mk(ThreadRole::PoolWorker { slot: t }, t)
                }
            })
            .collect(),
    }
}

/// Emit the op list for one role. `count` is the thread's grid count —
/// a zero-grid thread still participates in its role's barriers.
fn emit_ops(cfg: &FdConfig, role: ThreadRole, batches: &Batches, count: usize) -> Vec<SweepOp> {
    let depth = cfg.halo_depth();
    let block = cfg.effective_block();
    let mut ops = Vec::new();
    let compute = |ops: &mut Vec<SweepOp>, b: usize| match role {
        ThreadRole::Master => {
            for index in 0..batches.size(b) {
                ops.push(SweepOp::ApplyBoundarySlab { batch: b, index });
            }
        }
        _ => ops.push(SweepOp::ComputeInterior { batch: b }),
    };
    match role {
        ThreadRole::PoolWorker { .. } => {
            // Compute-only: mirror the master's fence sequence, nothing
            // else. (`Batches::build` never yields an empty batch when
            // `count > 0`.)
            if count > 0 {
                for b in 0..batches.len() {
                    for index in 0..batches.size(b) {
                        ops.push(SweepOp::ApplyBoundarySlab { batch: b, index });
                    }
                }
            }
        }
        ThreadRole::Single if cfg.approach == Approach::FlatOriginal => {
            // Blocking, dimension-by-dimension, one grid per batch —
            // GPAW's original scheme (§V-B).
            for b in 0..batches.len() {
                if batches.size(b) == 0 {
                    continue;
                }
                for axis in Axis::ALL {
                    let dirs = DirSet::Axis(axis);
                    ops.push(SweepOp::PostRecv {
                        batch: b,
                        dirs,
                        depth,
                    });
                    ops.push(SweepOp::SendFace {
                        batch: b,
                        dirs,
                        depth,
                    });
                    ops.push(SweepOp::WaitAll {
                        batch: b,
                        dirs,
                        depth,
                    });
                }
                compute(&mut ops, b);
            }
        }
        ThreadRole::Endpoint if cfg.approach == Approach::TemporalBlocked => {
            // The fused temporal block (Wittmann–Hager–Wellein): one
            // ordered depth-`block·h` exchange, then `block` wavefront
            // steps. The axes are exchanged in ascending order and each
            // later axis's face is widened by the earlier axes' ghost
            // depth (`RankPlan::exchange_wide`), so edge and corner
            // ghosts arrive by forwarding — no diagonal neighbors. That
            // ordering is load-bearing: axis `a`'s pack reads ghosts the
            // axis `a−1` wait just unpacked, which is why each axis's
            // exchange completes before the next begins.
            if count > 0 {
                for b in 0..batches.len() {
                    for axis in Axis::ALL {
                        let dirs = DirSet::Axis(axis);
                        ops.push(SweepOp::PostRecv {
                            batch: b,
                            dirs,
                            depth,
                        });
                        ops.push(SweepOp::SendFace {
                            batch: b,
                            dirs,
                            depth,
                        });
                        ops.push(SweepOp::WaitAll {
                            batch: b,
                            dirs,
                            depth,
                        });
                    }
                    for step in 0..block {
                        ops.push(SweepOp::ComputeWavefront {
                            batch: b,
                            step,
                            shrink: StencilCoeffs::HALO,
                        });
                    }
                }
            }
        }
        _ => {
            // The non-blocking batched pipeline shared by flat optimized,
            // flat static, hybrid multiple endpoints, and the master-only
            // comm thread: optionally double-buffered so batch `b+1`'s
            // exchange is in flight while `b` computes (§V-A).
            if count > 0 {
                let n = batches.len();
                let all = DirSet::All;
                if cfg.double_buffer {
                    ops.push(SweepOp::PostRecv {
                        batch: 0,
                        dirs: all,
                        depth,
                    });
                    ops.push(SweepOp::SendFace {
                        batch: 0,
                        dirs: all,
                        depth,
                    });
                    for b in 0..n {
                        if b + 1 < n {
                            ops.push(SweepOp::PostRecv {
                                batch: b + 1,
                                dirs: all,
                                depth,
                            });
                            ops.push(SweepOp::SendFace {
                                batch: b + 1,
                                dirs: all,
                                depth,
                            });
                        }
                        ops.push(SweepOp::WaitAll {
                            batch: b,
                            dirs: all,
                            depth,
                        });
                        compute(&mut ops, b);
                    }
                } else {
                    for b in 0..n {
                        ops.push(SweepOp::PostRecv {
                            batch: b,
                            dirs: all,
                            depth,
                        });
                        ops.push(SweepOp::SendFace {
                            batch: b,
                            dirs: all,
                            depth,
                        });
                        ops.push(SweepOp::WaitAll {
                            batch: b,
                            dirs: all,
                            depth,
                        });
                        compute(&mut ops, b);
                    }
                }
            }
        }
    }
    if role == ThreadRole::Endpoint {
        // Hybrid multiple's (and temporal blocked's) single
        // synchronization point per replay; a zero-grid endpoint still
        // takes it.
        ops.push(SweepOp::ThreadBarrier);
    }
    ops.push(SweepOp::AdvanceBuffer);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpaw_bgp_hw::{CartMap, Partition};

    fn programs(
        cfg: &FdConfig,
        nodes: usize,
        grid: [usize; 3],
        n_grids: usize,
    ) -> Vec<SweepProgram> {
        let p = Partition::standard(nodes, cfg.approach.exec_mode()).unwrap();
        let map = CartMap::best(p, grid);
        let threads = map.partition.threads_per_process();
        let plan = RankPlan::for_rank(&map, grid, 0, 8, cfg);
        compile_rank(cfg, &map, &plan, n_grids, threads)
    }

    #[test]
    fn every_approach_compiles_well_formed_programs() {
        for approach in Approach::ALL {
            let cfg = FdConfig::paper(approach).with_batch(4).with_sweeps(2);
            for prog in programs(&cfg, 8, [32, 32, 32], 10) {
                prog.validate()
                    .unwrap_or_else(|e| panic!("{approach:?} {:?}: {e}", prog.role));
            }
        }
    }

    #[test]
    fn roles_match_the_approach() {
        let cfg = FdConfig::paper(Approach::HybridMasterOnly);
        let progs = programs(&cfg, 8, [32, 32, 32], 8);
        assert_eq!(progs.len(), 4);
        assert_eq!(progs[0].role, ThreadRole::Master);
        for (t, p) in progs.iter().enumerate().skip(1) {
            assert_eq!(p.role, ThreadRole::PoolWorker { slot: t });
        }
        for a in [Approach::HybridMultiple, Approach::TemporalBlocked] {
            let cfg = FdConfig::paper(a);
            let progs = programs(&cfg, 8, [32, 32, 32], 8);
            assert_eq!(progs.len(), 4);
            assert!(progs.iter().all(|p| p.role == ThreadRole::Endpoint));
        }
        for a in [
            Approach::FlatOriginal,
            Approach::FlatOptimized,
            Approach::FlatStatic,
        ] {
            let cfg = FdConfig::paper(a);
            let progs = programs(&cfg, 8, [32, 32, 32], 8);
            assert_eq!(progs.len(), 1);
            assert_eq!(progs[0].role, ThreadRole::Single);
        }
    }

    #[test]
    fn barrier_counts_are_static_per_role() {
        // Hybrid multiple: one barrier per sweep per endpoint, even for
        // endpoints that own zero grids. Master-only: two waits per grid
        // (release + completion), identical across master and workers.
        let cfg = FdConfig::paper(Approach::HybridMultiple).with_batch(4);
        for prog in programs(&cfg, 8, [32, 32, 32], 2) {
            assert_eq!(prog.barrier_waits_per_sweep(), 1, "{:?}", prog.role);
        }
        let cfg = FdConfig::paper(Approach::HybridMasterOnly).with_batch(4);
        let progs = programs(&cfg, 8, [32, 32, 32], 10);
        let waits: Vec<usize> = progs.iter().map(|p| p.barrier_waits_per_sweep()).collect();
        assert!(waits.iter().all(|&w| w == 2 * 10), "{waits:?}");
    }

    #[test]
    fn single_rank_zero_bc_has_no_neighbors_and_sends_nothing() {
        // Edge geometry 1: one rank, zero boundaries ⇒ no neighbors, so
        // the compiled program predicts zero traffic yet stays
        // well-formed (receives are still posted and waited — they
        // resolve to zero-fill).
        for approach in Approach::ALL {
            let mut cfg = FdConfig::paper(approach).with_batch(3);
            cfg.bc = gpaw_grid::stencil::BoundaryCond::Zero;
            let nodes = 1;
            let p = Partition::standard(nodes, approach.exec_mode()).unwrap();
            let map = CartMap::best(p, [16, 16, 16]);
            let threads = map.partition.threads_per_process();
            let ranks = map.ranks();
            for rank in 0..ranks {
                let plan = RankPlan::for_rank(&map, [16, 16, 16], rank, 8, &cfg);
                for prog in compile_rank(&cfg, &map, &plan, 6, threads) {
                    prog.validate().unwrap();
                    if ranks == 1 {
                        assert!(plan.neighbors.iter().all(Option::is_none));
                        assert_eq!(prog.predicted_messages(), 0);
                        assert_eq!(prog.predicted_bytes(), 0);
                    }
                }
            }
        }
    }

    #[test]
    fn batch_larger_than_grid_count_collapses_to_one_batch() {
        // Edge geometry 2: batch 32 over 3 grids ⇒ one batch, programs
        // well-formed, double-buffering degenerates gracefully.
        for approach in Approach::ALL {
            let cfg = FdConfig::paper(approach).with_batch(32);
            for prog in programs(&cfg, 8, [32, 32, 32], 3) {
                prog.validate().unwrap();
                if approach != Approach::FlatOriginal {
                    // Flat original's effective batch is pinned to 1, so it
                    // keeps one batch per grid; everyone else collapses.
                    assert!(prog.batches.len() <= 1, "{approach:?}: {:?}", prog.batches);
                }
            }
        }
    }

    #[test]
    fn more_threads_than_grids_leaves_idle_endpoints_well_formed() {
        // Edge geometry 3: 2 grids over 4 endpoint threads ⇒ two
        // endpoints own nothing but still barrier once per sweep.
        let cfg = FdConfig::paper(Approach::HybridMultiple).with_batch(8);
        let progs = programs(&cfg, 8, [32, 32, 32], 2);
        assert_eq!(progs.len(), 4);
        let empty: Vec<&SweepProgram> = progs.iter().filter(|p| p.asg.count == 0).collect();
        assert_eq!(empty.len(), 2);
        for prog in &progs {
            prog.validate().unwrap();
            assert_eq!(prog.barrier_waits_per_sweep(), 1);
            if prog.asg.count == 0 {
                assert_eq!(
                    prog.ops,
                    vec![SweepOp::ThreadBarrier, SweepOp::AdvanceBuffer]
                );
            }
        }
    }

    #[test]
    fn flat_original_exchanges_axis_by_axis() {
        let cfg = FdConfig::paper(Approach::FlatOriginal);
        let progs = programs(&cfg, 8, [32, 32, 32], 2);
        let prog = &progs[0];
        // One grid per batch (effective batch 1), three blocking axis
        // exchanges each: 6 sends per grid per sweep on a periodic plan.
        assert_eq!(prog.batches.len(), 2);
        assert_eq!(prog.messages_per_sweep(), 12);
        assert!(prog.ops.iter().all(|op| !matches!(
            op,
            SweepOp::SendFace {
                dirs: DirSet::All,
                ..
            }
        )));
    }

    #[test]
    fn double_buffer_pipelines_the_next_batch() {
        let cfg = FdConfig::paper(Approach::FlatOptimized).with_batch(2);
        let progs = programs(&cfg, 8, [32, 32, 32], 6);
        let ops = &progs[0].ops;
        // Batch 1's sends are issued before batch 0 is waited on.
        let send1 = ops
            .iter()
            .position(|op| matches!(op, SweepOp::SendFace { batch: 1, .. }))
            .unwrap();
        let wait0 = ops
            .iter()
            .position(|op| matches!(op, SweepOp::WaitAll { batch: 0, .. }))
            .unwrap();
        assert!(send1 < wait0, "{ops:?}");
    }

    #[test]
    fn predicted_traffic_matches_hand_count() {
        // 8 nodes periodic, batch 4 over 8 grids ⇒ 2 batches; all six
        // neighbors exist ⇒ 12 messages/sweep for a flat-optimized rank.
        let cfg = FdConfig::paper(Approach::FlatOptimized)
            .with_batch(4)
            .with_sweeps(3);
        let progs = programs(&cfg, 8, [32, 32, 32], 8);
        let prog = &progs[0];
        assert_eq!(prog.messages_per_sweep(), 12);
        assert_eq!(prog.predicted_messages(), 36);
        let per_axis: u64 = (0..3)
            .map(|a| 2 * prog.plan.msg_bytes(Axis::ALL[a], 4))
            .sum();
        assert_eq!(prog.bytes_per_sweep(), 2 * per_axis);
    }

    #[test]
    fn temporal_blocked_fuses_sweeps_into_ordered_exchanges() {
        // 4 sweeps at depth 2 ⇒ block 2, two replays. Per replay and
        // batch: three ordered axis exchanges (each waited before the
        // next packs, so forwarded ghosts are current), then the two
        // wavefront steps.
        let cfg = FdConfig::paper(Approach::TemporalBlocked)
            .with_batch(4)
            .with_sweeps(4);
        let progs = programs(&cfg, 8, [32, 32, 32], 8);
        let prog = &progs[0]; // 8 grids / 4 threads ⇒ 2 grids, 1 batch
        prog.validate().unwrap();
        assert_eq!(prog.block(), 2);
        assert_eq!(prog.replays(), 2);
        assert_eq!(prog.batches.len(), 1);
        let depth = prog.plan.halo;
        assert_eq!(depth, 4);
        let b = 0;
        let mut want = Vec::new();
        for axis in Axis::ALL {
            let dirs = DirSet::Axis(axis);
            want.push(SweepOp::PostRecv {
                batch: b,
                dirs,
                depth,
            });
            want.push(SweepOp::SendFace {
                batch: b,
                dirs,
                depth,
            });
            want.push(SweepOp::WaitAll {
                batch: b,
                dirs,
                depth,
            });
        }
        want.push(SweepOp::ComputeWavefront {
            batch: b,
            step: 0,
            shrink: 2,
        });
        want.push(SweepOp::ComputeWavefront {
            batch: b,
            step: 1,
            shrink: 2,
        });
        want.push(SweepOp::ThreadBarrier);
        want.push(SweepOp::AdvanceBuffer);
        assert_eq!(prog.ops, want);
    }

    #[test]
    fn temporal_blocking_halves_messages_and_epochs() {
        // At equal sweep count, TemporalBlocked(2) sends the same 6
        // messages per replay as HybridMultiple per sweep, but replays
        // half as often — and collapses each replay's three axis waits
        // into one exchange epoch.
        let sweeps = 4;
        let tb = FdConfig::paper(Approach::TemporalBlocked)
            .with_batch(4)
            .with_sweeps(sweeps);
        let hm = FdConfig::paper(Approach::HybridMultiple)
            .with_batch(4)
            .with_sweeps(sweeps);
        let tb_prog = &programs(&tb, 8, [32, 32, 32], 8)[0];
        let hm_prog = &programs(&hm, 8, [32, 32, 32], 8)[0];
        assert_eq!(
            tb_prog.predicted_messages() * 2,
            hm_prog.predicted_messages()
        );
        assert_eq!(tb_prog.exchange_epochs() * 2, hm_prog.exchange_epochs());
        // ≥ 40% fewer exchange epochs — the acceptance bar, met at 50%.
        assert!(tb_prog.exchange_epochs() as f64 <= 0.6 * hm_prog.exchange_epochs() as f64);
        // Bytes are *wider* per message (depth 4 + forwarded ghosts):
        // temporal blocking trades bytes for epochs, not the reverse.
        assert!(tb_prog.bytes_per_sweep() > hm_prog.bytes_per_sweep());
    }

    #[test]
    fn validate_rejects_malformed_fused_schedules() {
        let cfg = FdConfig::paper(Approach::TemporalBlocked)
            .with_batch(4)
            .with_sweeps(4);
        let good = programs(&cfg, 8, [32, 32, 32], 8).remove(0);
        let dirs = DirSet::Axis(Axis::X);
        let depth = good.plan.halo;

        // Waiting before our own send: the SPMD deadlock.
        let mut p = good.clone();
        p.ops = vec![
            SweepOp::PostRecv {
                batch: 0,
                dirs,
                depth,
            },
            SweepOp::WaitAll {
                batch: 0,
                dirs,
                depth,
            },
            SweepOp::SendFace {
                batch: 0,
                dirs,
                depth,
            },
            SweepOp::AdvanceBuffer,
        ];
        assert!(matches!(
            p.validate(),
            Err(ValidationError::WaitBeforeSend { op: 1, .. })
        ));

        // Advancing with a posted-but-unwaited receive.
        let mut p = good.clone();
        p.ops = vec![
            SweepOp::PostRecv {
                batch: 0,
                dirs,
                depth,
            },
            SweepOp::SendFace {
                batch: 0,
                dirs,
                depth,
            },
            SweepOp::AdvanceBuffer,
        ];
        assert!(matches!(
            p.validate(),
            Err(ValidationError::AdvanceWithOutstanding { batch: 0 })
        ));

        // Computing before the exchange is waited.
        let mut p = good.clone();
        p.ops = vec![
            SweepOp::PostRecv {
                batch: 0,
                dirs,
                depth,
            },
            SweepOp::SendFace {
                batch: 0,
                dirs,
                depth,
            },
            SweepOp::ComputeInterior { batch: 0 },
            SweepOp::WaitAll {
                batch: 0,
                dirs,
                depth,
            },
            SweepOp::AdvanceBuffer,
        ];
        assert!(matches!(
            p.validate(),
            Err(ValidationError::ComputeUnwaited { op: 2, batch: 0 })
        ));

        // A depth that disagrees with the plan mis-sizes every buffer.
        let mut p = good.clone();
        p.ops[0] = SweepOp::PostRecv {
            batch: 0,
            dirs: DirSet::Axis(Axis::X),
            depth: depth - 1,
        };
        assert!(matches!(
            p.validate(),
            Err(ValidationError::DepthMismatch { op: 0, .. })
        ));

        // Wavefront steps out of order…
        let mut p = good.clone();
        let n = p.ops.len();
        p.ops.swap(n - 3, n - 4); // step 1 before step 0
        assert!(matches!(
            p.validate(),
            Err(ValidationError::WavefrontOrder {
                step: 1,
                expected: 0,
                ..
            })
        ));

        // …or cut short of the block.
        let mut p = good.clone();
        p.ops.remove(n - 3); // drop step 1
        assert!(matches!(
            p.validate(),
            Err(ValidationError::WavefrontIncomplete {
                batch: 0,
                steps: 1,
                block: 2,
            })
        ));

        // The pristine program still validates after all that cloning.
        good.validate().unwrap();
    }
}
