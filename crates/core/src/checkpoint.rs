//! Epoch checkpoints of a sweep run, derived from the compiled IR.
//!
//! Every [`SweepProgram`](crate::program::SweepProgram) ends each sweep
//! with exactly one `AdvanceBuffer` op (enforced by `validate()`), so
//! "state after `e` completed sweeps" is a well-defined epoch boundary on
//! *every* plane and for *every* approach — the depositing thread just
//! snapshots its input grids right after the buffer swap. A
//! [`CheckpointStore`] collects those per-`(rank, slot)` snapshots and
//! answers the one question recovery needs: what is the newest epoch
//! **every** registered thread has deposited (the *consistent* epoch a
//! failed run can be rolled back to)?
//!
//! Epoch numbering: epoch `e` is the state after `e` completed sweeps.
//! Epoch 0 is the synthetic initial fill — never deposited, because the
//! runner can always re-derive it from the seed; `restore` returning
//! `None` at epoch 0 is therefore the normal "refill from scratch" path.
//!
//! The store prunes aggressively: once every key has deposited epoch `e`,
//! snapshots below `e` can never be a rollback target and are dropped, so
//! steady-state memory is one or two epochs per thread regardless of
//! sweep count.
//!
//! **Integrity:** every snapshot carries a
//! [`grids_digest`] computed at deposit
//! time, and every read path (`restore`, `epoch_records`,
//! [`CheckpointStore::verified_consistent_epoch`]) re-derives and checks
//! it. A snapshot whose bits changed between deposit and restore — a
//! memory fault, or the seeded `CorruptSnapshot` injector — is detected,
//! counted, and *purged*, so recovery degrades to an older verified epoch
//! (possibly all the way to the synthetic fill) instead of silently
//! replaying poisoned state.

use crate::durable::SnapshotRecord;
use crate::integrity::grids_digest;
use crate::program::{SweepProgram, ThreadRole};
use gpaw_grid::decomp::Subdomain;
use gpaw_grid::grid3::Grid3;
use gpaw_grid::scalar::Scalar;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, MutexGuard};

/// The number of completed sweeps a snapshot reflects.
pub type Epoch = usize;

/// One deposited snapshot with the digest that convicts later bit rot.
struct Snap<T> {
    /// `grids_digest` of `grids` at deposit time.
    digest: u64,
    /// The thread's input grids, in its own local order.
    grids: Vec<Grid3<T>>,
}

struct Inner<T> {
    /// Latest deposited epoch per registered `(rank, slot)` key; 0 until
    /// the key's first deposit (epoch 0 is the synthetic fill).
    latest: HashMap<(usize, usize), Epoch>,
    /// Snapshots by `(rank, slot, epoch)`: the thread's input grids, in
    /// its own local order, right after the epoch's buffer swap.
    snaps: HashMap<(usize, usize, Epoch), Snap<T>>,
    /// The most snapshots ever held at once — the memory-bound witness.
    high_water: usize,
    /// Digest verifications performed across all read paths.
    digest_checks: u64,
    /// Verifications that failed (each also purged the bad snapshot).
    digest_failures: u64,
}

/// Shared store of per-thread epoch snapshots for one supervised run.
///
/// Registered once with every `(rank, slot)` key that will deposit;
/// interior-mutable so rank threads deposit concurrently through a shared
/// reference. One mutex is enough: deposits happen once per sweep per
/// thread and clone grid buffers *outside* hot loops, so contention is
/// negligible next to the compute they bracket.
pub struct CheckpointStore<T> {
    inner: Mutex<Inner<T>>,
}

impl<T: Scalar> CheckpointStore<T> {
    /// A store expecting deposits from exactly `keys` (each a
    /// `(rank, slot)` pair). The key set defines consistency: an epoch is
    /// consistent only when *every* key has deposited it (or a later one).
    pub fn new(keys: impl IntoIterator<Item = (usize, usize)>) -> CheckpointStore<T> {
        CheckpointStore {
            inner: Mutex::new(Inner {
                latest: keys.into_iter().map(|k| (k, 0)).collect(),
                snaps: HashMap::new(),
                high_water: 0,
                digest_checks: 0,
                digest_failures: 0,
            }),
        }
    }

    /// Depositors never panic while holding the lock; recover from poison
    /// (a panic elsewhere mid-run is exactly the case recovery serves).
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deposit `(rank, slot)`'s snapshot of epoch `epoch` (its input
    /// grids after the sweep's buffer swap, in the thread's local order).
    /// Prunes every snapshot below the new fleet-wide consistent epoch.
    pub fn deposit(&self, rank: usize, slot: usize, epoch: Epoch, grids: Vec<Grid3<T>>) {
        let digest = grids_digest(&grids);
        let mut st = self.lock();
        st.snaps.insert((rank, slot, epoch), Snap { digest, grids });
        // Peak is measured before pruning: the transient counts too.
        st.high_water = st.high_water.max(st.snaps.len());
        let cur = st.latest.entry((rank, slot)).or_insert(0);
        if epoch > *cur {
            *cur = epoch;
        }
        let floor = st.latest.values().copied().min().unwrap_or(0);
        st.snaps.retain(|&(_, _, e), _| e >= floor);
    }

    /// The newest epoch every registered key has reached — the rollback
    /// target after a failure. 0 when any thread has yet to complete a
    /// sweep (roll back to the synthetic fill).
    pub fn consistent_epoch(&self) -> Epoch {
        self.lock().latest.values().copied().min().unwrap_or(0)
    }

    /// The newest epoch all of `rank`'s registered slots have deposited.
    pub fn rank_epoch(&self, rank: usize) -> Epoch {
        self.lock()
            .latest
            .iter()
            .filter(|((r, _), _)| *r == rank)
            .map(|(_, &e)| e)
            .min()
            .unwrap_or(0)
    }

    /// Clone out `(rank, slot)`'s snapshot of `epoch`, verifying its
    /// digest first. `None` for epoch 0 (the synthetic fill — re-derive
    /// it), for an unknown key/epoch, or for a snapshot whose bits no
    /// longer match its deposit-time digest (the poisoned snapshot is
    /// purged and counted, so the caller falls back like any other miss).
    pub fn restore(&self, rank: usize, slot: usize, epoch: Epoch) -> Option<Vec<Grid3<T>>> {
        let mut st = self.lock();
        let inner = &mut *st;
        let snap = inner.snaps.get(&(rank, slot, epoch))?;
        inner.digest_checks += 1;
        if grids_digest(&snap.grids) != snap.digest {
            inner.digest_failures += 1;
            inner.snaps.remove(&(rank, slot, epoch));
            return None;
        }
        Some(snap.grids.clone())
    }

    /// The newest epoch every registered key has deposited **and whose
    /// snapshots all verify** — the rollback target recovery uses when
    /// corruption is in play. Walks down from [`consistent_epoch`],
    /// purging every poisoned snapshot it convicts; degrades to 0 (full
    /// restart from the synthetic fill) when no stored epoch survives —
    /// still bit-identical, just more replay.
    ///
    /// [`consistent_epoch`]: CheckpointStore::consistent_epoch
    pub fn verified_consistent_epoch(&self) -> Epoch {
        let mut st = self.lock();
        let inner = &mut *st;
        let keys: Vec<(usize, usize)> = inner.latest.keys().copied().collect();
        let mut epoch = inner.latest.values().copied().min().unwrap_or(0);
        while epoch > 0 {
            let mut ok = true;
            for &(rank, slot) in &keys {
                let key = (rank, slot, epoch);
                match inner.snaps.get(&key) {
                    Some(snap) => {
                        inner.digest_checks += 1;
                        if grids_digest(&snap.grids) != snap.digest {
                            inner.digest_failures += 1;
                            inner.snaps.remove(&key);
                            ok = false;
                        }
                    }
                    // Pruned (or never deposited): older epochs cannot be
                    // complete either, but keep walking — a lower epoch may
                    // still hold every key if pruning has not caught up.
                    None => ok = false,
                }
            }
            if ok {
                return epoch;
            }
            epoch -= 1;
        }
        0
    }

    /// Digest verifications performed across all read paths.
    pub fn digest_checks(&self) -> u64 {
        self.lock().digest_checks
    }

    /// Digest verifications that failed (each purged the bad snapshot).
    pub fn digest_failures(&self) -> u64 {
        self.lock().digest_failures
    }

    /// Flip one bit of `(rank, slot, epoch)`'s stored snapshot *without*
    /// updating its digest — the seeded `CorruptSnapshot` injector's
    /// deterministic model of a memory fault striking a checkpoint
    /// buffer. Returns whether a stored data word existed to corrupt.
    /// Fault-injection/test hook, same spirit as the durable store's
    /// `epoch_path`; production code never calls it.
    pub fn corrupt_snapshot(&self, rank: usize, slot: usize, epoch: Epoch) -> bool {
        let mut st = self.lock();
        let Some(snap) = st.snaps.get_mut(&(rank, slot, epoch)) else {
            return false;
        };
        for g in snap.grids.iter_mut() {
            if let Some(w) = g.data_mut().first_mut() {
                let mut words = w.bit_pattern();
                words[0] ^= 1;
                *w = T::from_bit_pattern(words);
                return true;
            }
        }
        false
    }

    /// Discard every snapshot past `epoch` and clamp each key's progress
    /// to it — called between attempts so replayed sweeps re-deposit on a
    /// clean slate.
    pub fn rollback(&self, epoch: Epoch) {
        let mut st = self.lock();
        st.snaps.retain(|&(_, _, e), _| e <= epoch);
        for v in st.latest.values_mut() {
            *v = (*v).min(epoch);
        }
    }

    /// Snapshots currently held (tests; bounds the memory claim).
    pub fn snapshot_count(&self) -> usize {
        self.lock().snaps.len()
    }

    /// The most snapshots ever held at once. Flat over a long run — that
    /// is the memory-bound guarantee the durability spiller relies on
    /// (the store stages at most the window between the consistent floor
    /// and the fastest thread, never the whole history).
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Atomically clone out *every* registered key's snapshot of `epoch`,
    /// sorted by `(rank, slot)` — the unit a durable spill serializes.
    /// `None` if any key lacks that epoch (not yet consistent, or already
    /// pruned) **or fails its digest check** (the poisoned snapshot is
    /// purged), so a spill is always all-keys-or-nothing and never writes
    /// silently-corrupted state to disk.
    pub fn epoch_records(&self, epoch: Epoch) -> Option<Vec<SnapshotRecord<T>>> {
        let mut st = self.lock();
        let inner = &mut *st;
        let mut keys: Vec<(usize, usize)> = inner.latest.keys().copied().collect();
        keys.sort_unstable();
        let mut records = Vec::with_capacity(keys.len());
        for (rank, slot) in keys {
            let snap = inner.snaps.get(&(rank, slot, epoch))?;
            inner.digest_checks += 1;
            if grids_digest(&snap.grids) != snap.digest {
                inner.digest_failures += 1;
                inner.snaps.remove(&(rank, slot, epoch));
                return None;
            }
            records.push(SnapshotRecord {
                rank,
                slot,
                grids: snap.grids.clone(),
            });
        }
        Some(records)
    }

    /// Drop every snapshot strictly below `epoch` — called once a spill
    /// has made `epoch` durable on disk, so memory never retains what
    /// the disk already guarantees.
    pub fn prune_below(&self, epoch: Epoch) {
        let mut st = self.lock();
        st.snaps.retain(|&(_, _, e), _| e >= epoch);
    }
}

/// Where one `(rank, slot)` snapshot's grids live in the global domain —
/// the bridge between one geometry's checkpoint keys and the
/// geometry-free global state a degradation re-shards.
///
/// A layout is derived from a geometry's compiled programs
/// ([`shard_layout`]) and mirrors exactly what each depositing thread
/// snapshots: its subdomain of every grid it holds, in its own local
/// grid order.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Depositing rank.
    pub rank: usize,
    /// Thread slot within the rank (0 for single-key ranks).
    pub slot: usize,
    /// The subdomain of every grid this key's snapshot covers.
    pub sub: Subdomain,
    /// Global grid ids, in the snapshot's local order.
    pub grid_ids: Vec<usize>,
}

/// The checkpoint layout of one geometry's compiled programs: one
/// [`ShardSpec`] per `(rank, slot)` checkpoint key, in key order.
///
/// Mirrors the runtime's deposit/restore convention: ranks whose slot
/// programs are peer endpoints (hybrid multiple, temporal blocked)
/// deposit one snapshot per thread slot holding that slot's round-robin
/// grid share; every other role deposits a single slot-0 snapshot
/// holding the rank's whole grid assignment (which for flat static is
/// the core's quarter of the set).
pub fn shard_layout(programs: &[Vec<SweepProgram>]) -> Vec<ShardSpec> {
    let mut layout = Vec::new();
    for (rank, progs) in programs.iter().enumerate() {
        let multi = progs.len() > 1 && matches!(progs[0].role, ThreadRole::Endpoint);
        let slots: &[SweepProgram] = if multi { progs } else { &progs[..1] };
        for (slot, prog) in slots.iter().enumerate() {
            layout.push(ShardSpec {
                rank,
                slot,
                sub: prog.plan.sub,
                grid_ids: prog.asg.ids(),
            });
        }
    }
    layout
}

/// Why a cross-geometry gather failed. Every mismatch between the
/// records and the layout they claim to implement is a typed value —
/// degradation falls back to an older epoch (or the synthetic fill)
/// instead of assembling a half-covered global grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegridError {
    /// The layout expects a `(rank, slot)` key the records lack.
    MissingRecord {
        /// Expected depositing rank.
        rank: usize,
        /// Expected thread slot.
        slot: usize,
    },
    /// A record holds a different number of grids than its layout key.
    GridCountMismatch {
        /// Depositing rank.
        rank: usize,
        /// Thread slot.
        slot: usize,
        /// Grids in the record.
        got: usize,
        /// Grids the layout expects.
        want: usize,
    },
    /// A record's grid extent is not the layout subdomain's extent.
    ExtentMismatch {
        /// Depositing rank.
        rank: usize,
        /// Thread slot.
        slot: usize,
        /// Extent found in the record.
        got: [usize; 3],
        /// Extent the layout expects.
        want: [usize; 3],
    },
    /// After all records were placed, a grid's interior was not covered
    /// exactly once (a gap or an overlap in the layout).
    Uncovered {
        /// Global grid id.
        grid: usize,
        /// Interior points written.
        covered: usize,
        /// Interior points the global grid has.
        points: usize,
    },
}

impl fmt::Display for RegridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegridError::MissingRecord { rank, slot } => {
                write!(f, "gather: no snapshot record for key ({rank}, {slot})")
            }
            RegridError::GridCountMismatch {
                rank,
                slot,
                got,
                want,
            } => write!(
                f,
                "gather: key ({rank}, {slot}) holds {got} grids, layout expects {want}"
            ),
            RegridError::ExtentMismatch {
                rank,
                slot,
                got,
                want,
            } => write!(
                f,
                "gather: key ({rank}, {slot}) grid extent {got:?} does not match subdomain \
                 extent {want:?}"
            ),
            RegridError::Uncovered {
                grid,
                covered,
                points,
            } => write!(
                f,
                "gather: grid {grid} covered {covered} of {points} interior points"
            ),
        }
    }
}

impl std::error::Error for RegridError {}

/// Assemble one epoch's per-shard snapshots into full global grids.
///
/// Grid state at an epoch boundary is geometry-independent in the
/// *interior* (ghosts are refilled by the halo exchange that opens every
/// sweep), so only interiors are copied; the returned grids' halos are
/// zero. Coverage is checked exactly: every interior point of every
/// grid must be written once, which catches a layout/record mismatch
/// before it can become a silent bitwise diff on the shrunken geometry.
pub fn gather_epoch<T: Scalar>(
    records: &[SnapshotRecord<T>],
    layout: &[ShardSpec],
    grid_ext: [usize; 3],
    n_grids: usize,
    halo: usize,
) -> Result<Vec<Grid3<T>>, RegridError> {
    let by_key: HashMap<(usize, usize), &SnapshotRecord<T>> =
        records.iter().map(|r| ((r.rank, r.slot), r)).collect();
    let mut global: Vec<Grid3<T>> = (0..n_grids).map(|_| Grid3::zeros(grid_ext, halo)).collect();
    let mut covered = vec![0usize; n_grids];
    for spec in layout {
        let rec = by_key
            .get(&(spec.rank, spec.slot))
            .ok_or(RegridError::MissingRecord {
                rank: spec.rank,
                slot: spec.slot,
            })?;
        if rec.grids.len() != spec.grid_ids.len() {
            return Err(RegridError::GridCountMismatch {
                rank: spec.rank,
                slot: spec.slot,
                got: rec.grids.len(),
                want: spec.grid_ids.len(),
            });
        }
        for (g, &id) in rec.grids.iter().zip(&spec.grid_ids) {
            if g.n() != spec.sub.ext {
                return Err(RegridError::ExtentMismatch {
                    rank: spec.rank,
                    slot: spec.slot,
                    got: g.n(),
                    want: spec.sub.ext,
                });
            }
            let dst = &mut global[id];
            let [si, sj, sk] = spec.sub.start;
            for i in 0..spec.sub.ext[0] {
                for j in 0..spec.sub.ext[1] {
                    for k in 0..spec.sub.ext[2] {
                        dst.set(
                            (si + i) as isize,
                            (sj + j) as isize,
                            (sk + k) as isize,
                            g.get(i as isize, j as isize, k as isize),
                        );
                    }
                }
            }
            covered[id] += spec.sub.points();
        }
    }
    let points = grid_ext[0] * grid_ext[1] * grid_ext[2];
    for (id, &c) in covered.iter().enumerate() {
        if c != points {
            return Err(RegridError::Uncovered {
                grid: id,
                covered: c,
                points,
            });
        }
    }
    Ok(global)
}

/// Cut global grids back into per-shard snapshot records for a (possibly
/// different) geometry's `layout` — the inverse of [`gather_epoch`].
/// Each record's grids get `halo` ghost planes, zero-filled: the resumed
/// run's first exchange refills them, exactly as it would after any
/// rollback.
pub fn reshard_epoch<T: Scalar>(
    global: &[Grid3<T>],
    layout: &[ShardSpec],
    halo: usize,
) -> Vec<SnapshotRecord<T>> {
    layout
        .iter()
        .map(|spec| {
            let grids = spec
                .grid_ids
                .iter()
                .map(|&id| {
                    let src = &global[id];
                    let mut g = Grid3::zeros(spec.sub.ext, halo);
                    let [si, sj, sk] = spec.sub.start;
                    for i in 0..spec.sub.ext[0] {
                        for j in 0..spec.sub.ext[1] {
                            for k in 0..spec.sub.ext[2] {
                                g.set(
                                    i as isize,
                                    j as isize,
                                    k as isize,
                                    src.get(
                                        (si + i) as isize,
                                        (sj + j) as isize,
                                        (sk + k) as isize,
                                    ),
                                );
                            }
                        }
                    }
                    g
                })
                .collect();
            SnapshotRecord {
                rank: spec.rank,
                slot: spec.slot,
                grids,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(v: f64) -> Grid3<f64> {
        let mut g = Grid3::zeros([4, 4, 4], 1);
        g.data_mut()[0] = v;
        g
    }

    fn store() -> CheckpointStore<f64> {
        CheckpointStore::new([(0, 0), (1, 0)])
    }

    #[test]
    fn consistent_epoch_is_the_minimum_over_keys() {
        let s = store();
        assert_eq!(s.consistent_epoch(), 0);
        s.deposit(0, 0, 1, vec![grid(1.0)]);
        assert_eq!(s.consistent_epoch(), 0, "rank 1 has not deposited yet");
        s.deposit(1, 0, 1, vec![grid(2.0)]);
        assert_eq!(s.consistent_epoch(), 1);
        s.deposit(0, 0, 2, vec![grid(3.0)]);
        assert_eq!(s.consistent_epoch(), 1);
        assert_eq!(s.rank_epoch(0), 2);
        assert_eq!(s.rank_epoch(1), 1);
    }

    #[test]
    fn restore_round_trips_and_epoch_zero_is_the_synthetic_fill() {
        let s = store();
        s.deposit(0, 0, 1, vec![grid(7.0)]);
        let back = s.restore(0, 0, 1).expect("deposited snapshot");
        assert_eq!(back[0].data()[0], 7.0);
        assert!(s.restore(0, 0, 0).is_none(), "epoch 0 is never stored");
        assert!(s.restore(1, 0, 1).is_none(), "rank 1 deposited nothing");
    }

    #[test]
    fn snapshots_below_the_consistent_floor_are_pruned() {
        let s = store();
        for e in 1..=4 {
            s.deposit(0, 0, e, vec![grid(e as f64)]);
            s.deposit(1, 0, e, vec![grid(e as f64)]);
        }
        // Everything below the floor (epoch 4) is gone; the floor stays.
        assert_eq!(s.snapshot_count(), 2);
        assert!(s.restore(0, 0, 4).is_some());
        assert!(s.restore(0, 0, 3).is_none());
    }

    #[test]
    fn rollback_discards_future_snapshots_and_clamps_progress() {
        let s = store();
        s.deposit(0, 0, 1, vec![grid(1.0)]);
        s.deposit(1, 0, 1, vec![grid(1.5)]);
        s.deposit(0, 0, 2, vec![grid(2.0)]);
        s.rollback(1);
        assert_eq!(s.rank_epoch(0), 1);
        assert!(s.restore(0, 0, 2).is_none());
        assert!(s.restore(0, 0, 1).is_some());
        // Re-depositing the replayed epoch works.
        s.deposit(0, 0, 2, vec![grid(2.0)]);
        assert_eq!(s.rank_epoch(0), 2);
    }

    #[test]
    fn high_water_stays_flat_over_a_long_run() {
        // The memory-bound claim: 200 epochs of deposits from two keys
        // (one lagging a step behind, the realistic skew) must not grow
        // the live set — the peak is a small constant, not O(epochs).
        let s = store();
        for e in 1..=200 {
            s.deposit(0, 0, e, vec![grid(e as f64)]);
            if e > 1 {
                s.deposit(1, 0, e - 1, vec![grid(e as f64)]);
            }
        }
        // Bound: keys × (skew window + 1) + the one in-flight deposit
        // = 2 × 2 + 1 — a constant in the epoch count.
        assert!(
            s.high_water() <= 5,
            "high water {} snapshots after 200 epochs — memory is not bounded",
            s.high_water()
        );
        assert!(s.snapshot_count() <= s.high_water());
    }

    #[test]
    fn epoch_records_is_all_keys_or_nothing() {
        let s = store();
        s.deposit(0, 0, 1, vec![grid(1.0)]);
        assert!(
            s.epoch_records(1).is_none(),
            "epoch 1 is not consistent yet — a spill now would tear"
        );
        s.deposit(1, 0, 1, vec![grid(2.0)]);
        let recs = s.epoch_records(1).expect("both keys deposited");
        assert_eq!(recs.len(), 2);
        assert_eq!(
            (recs[0].rank, recs[0].slot),
            (0, 0),
            "sorted by (rank, slot)"
        );
        assert_eq!(recs[1].grids[0].data()[0], 2.0);
    }

    #[test]
    fn prune_below_drops_spilled_epochs_but_keeps_the_floor() {
        let s = store();
        s.deposit(0, 0, 1, vec![grid(1.0)]);
        s.deposit(0, 0, 2, vec![grid(2.0)]);
        // Only rank 0 progressed, so the consistent floor has not moved
        // and both snapshots are live. A durable spill of epoch 2 for
        // rank 0's key lets us drop epoch 1 from memory explicitly.
        s.prune_below(2);
        assert!(s.restore(0, 0, 1).is_none());
        assert!(s.restore(0, 0, 2).is_some());
    }

    #[test]
    fn unregistered_stores_report_epoch_zero() {
        let s: CheckpointStore<f64> = CheckpointStore::new([]);
        assert_eq!(s.consistent_epoch(), 0);
        assert_eq!(s.rank_epoch(3), 0);
    }

    #[test]
    fn poisoned_snapshot_is_rejected_purged_and_counted_at_restore() {
        let s = store();
        s.deposit(0, 0, 1, vec![grid(7.0)]);
        assert!(s.corrupt_snapshot(0, 0, 1), "snapshot exists to poison");
        assert!(
            s.restore(0, 0, 1).is_none(),
            "a bit-flipped snapshot must never restore"
        );
        assert_eq!(s.digest_checks(), 1);
        assert_eq!(s.digest_failures(), 1);
        // Purged: a second restore is a plain miss, not a second failure.
        assert!(s.restore(0, 0, 1).is_none());
        assert_eq!(s.digest_failures(), 1);
        // Clean snapshots still verify and count.
        s.deposit(0, 0, 2, vec![grid(2.0)]);
        assert!(s.restore(0, 0, 2).is_some());
        assert_eq!(s.digest_checks(), 2);
        assert_eq!(s.digest_failures(), 1);
    }

    #[test]
    fn verified_consistent_epoch_degrades_past_a_poisoned_epoch() {
        let s = store();
        for e in 1..=2 {
            s.deposit(0, 0, e, vec![grid(e as f64)]);
            s.deposit(1, 0, e, vec![grid(e as f64)]);
        }
        // Aggressive pruning dropped epoch 1, so poisoning epoch 2 leaves
        // nothing verifiable: the verified floor is the synthetic fill.
        assert_eq!(s.consistent_epoch(), 2);
        assert!(s.corrupt_snapshot(1, 0, 2));
        assert_eq!(s.verified_consistent_epoch(), 0);
        assert!(s.digest_failures() >= 1);
        // The unverifiable epoch's poisoned snap was purged; the clean
        // sibling still restores (it is simply not part of a full epoch).
        assert!(s.restore(1, 0, 2).is_none());
        assert!(s.restore(0, 0, 2).is_some());
    }

    #[test]
    fn verified_consistent_epoch_matches_plain_floor_when_clean() {
        let s = store();
        s.deposit(0, 0, 1, vec![grid(1.0)]);
        s.deposit(1, 0, 1, vec![grid(2.0)]);
        assert_eq!(s.verified_consistent_epoch(), s.consistent_epoch());
        assert_eq!(s.digest_failures(), 0);
    }

    #[test]
    fn epoch_records_refuse_to_spill_a_poisoned_epoch() {
        let s = store();
        s.deposit(0, 0, 1, vec![grid(1.0)]);
        s.deposit(1, 0, 1, vec![grid(2.0)]);
        assert!(s.corrupt_snapshot(0, 0, 1));
        assert!(
            s.epoch_records(1).is_none(),
            "a spill must never serialize corrupted state"
        );
        assert!(s.digest_failures() >= 1);
    }

    #[test]
    fn corrupting_an_absent_snapshot_is_a_no_op() {
        let s = store();
        assert!(!s.corrupt_snapshot(0, 0, 5));
        assert_eq!(s.digest_failures(), 0);
    }
}
