//! The timed executor: the compiled sweep programs, replayed on the
//! simulated BGP.
//!
//! Each (rank, thread) gets a [`StreamProgram`] — a lazy cursor over its
//! compiled [`SweepProgram`] that lowers one op at a time into
//! `gpaw-simmpi` instructions, so even the 16 384-core Gustafson runs
//! keep O(batch) memory per rank. There is no schedule logic here: which
//! batch exchanges when, who barriers with whom — all of that was decided
//! once by [`crate::program::compile_rank`], and this module only maps
//! each [`SweepOp`] to its cost-model instruction(s). The other planes
//! interpret the *same* op stream, so messages, tags, epochs and compute
//! volume agree by construction.

use crate::config::FdConfig;
use crate::plan::{recv_tag, send_tag, RankPlan};
use crate::program::{compile_rank, SweepOp, SweepProgram};
use gpaw_bgp_hw::spec::CostModel;
use gpaw_bgp_hw::topology::{Axis, LinkDir};
use gpaw_bgp_hw::{CartMap, Partition};
use gpaw_simmpi::{Instr, Machine, Program, RunReport, Scope};
use std::collections::VecDeque;

/// A timed FD job.
#[derive(Debug, Clone, Copy)]
pub struct TimedJob {
    /// Total CPU cores (4 × nodes; 1 means the sequential baseline).
    pub cores: usize,
    /// Global grid extents.
    pub grid_ext: [usize; 3],
    /// Number of real-space grids.
    pub n_grids: usize,
    /// Bytes per grid point (8 real / 16 complex).
    pub bytes_per_point: usize,
    /// Engine configuration.
    pub config: FdConfig,
}

/// Which machine scope to simulate at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeSel {
    /// Unit cell on torus partitions, full machine otherwise — what the
    /// figures use.
    Auto,
    /// Force the exact full-machine simulation.
    Full,
    /// Force the unit cell (requires a torus partition).
    Cell,
}

/// Lazy lowering of one thread's [`SweepProgram`] to simulator
/// instructions.
pub struct StreamProgram {
    prog: SweepProgram,
    /// This thread's compute share of one grid, `(points, rows)`.
    unit_points: u64,
    unit_rows: u64,
    queue: VecDeque<Instr>,
    sweep: usize,
    op_idx: usize,
    done: bool,
}

impl StreamProgram {
    /// Wrap one compiled program.
    pub fn new(prog: SweepProgram) -> StreamProgram {
        let (unit_points, unit_rows) = prog.compute_unit();
        StreamProgram {
            prog,
            unit_points,
            unit_rows,
            queue: VecDeque::new(),
            sweep: 0,
            op_idx: 0,
            done: false,
        }
    }

    /// Lower the op under the cursor into the instruction queue and
    /// advance; wraps to the next replay at the end of the op list. One
    /// replay of a fused program covers `block` sweeps, so the cursor
    /// advances the sweep counter by the block size.
    fn expand(&mut self) {
        let op = self.prog.ops[self.op_idx];
        self.lower(op);
        self.op_idx += 1;
        if self.op_idx == self.prog.ops.len() {
            self.op_idx = 0;
            self.sweep += self.prog.block();
            if self.sweep >= self.prog.sweeps {
                self.done = true;
            }
        }
    }

    /// One [`SweepOp`] → its cost-model instruction(s).
    fn lower(&mut self, op: SweepOp) {
        let plan = &self.prog.plan;
        match op {
            SweepOp::PostRecv { batch, dirs, .. } => {
                let size = self.prog.batches.size(batch);
                let first = self.prog.first_global(batch);
                let epoch = self.prog.epoch(self.sweep, batch);
                for &ld in dirs.dirs() {
                    if let Some(nb) = plan.neighbors[ld.index()] {
                        self.queue.push_back(Instr::Irecv {
                            src: nb,
                            bytes: plan.msg_bytes(ld.axis, size),
                            tag: recv_tag(self.sweep, first, ld),
                            epoch,
                        });
                    }
                }
            }
            SweepOp::SendFace { batch, dirs, .. } => {
                let size = self.prog.batches.size(batch);
                let first = self.prog.first_global(batch);
                let epoch = self.prog.epoch(self.sweep, batch);
                for &ld in dirs.dirs() {
                    if let Some(nb) = plan.neighbors[ld.index()] {
                        self.queue.push_back(Instr::Isend {
                            dst: nb,
                            bytes: plan.msg_bytes(ld.axis, size),
                            tag: send_tag(self.sweep, first, ld),
                            epoch,
                        });
                    }
                }
            }
            SweepOp::WaitAll { batch, .. } => {
                self.queue.push_back(Instr::WaitEpoch {
                    epoch: self.prog.epoch(self.sweep, batch),
                });
            }
            SweepOp::ComputeInterior { batch } => {
                let size = self.prog.batches.size(batch) as u64;
                if size > 0 {
                    self.queue.push_back(Instr::Compute {
                        points: self.unit_points * size,
                        rows: self.unit_rows * size,
                        grids: size,
                    });
                }
            }
            // One wavefront step of a fused block: the subdomain extended
            // by `shrink * (block - 1 - step)` ghost layers on every side
            // that has a neighbor. Redundant ghost-zone compute is exactly
            // what temporal blocking trades for fewer exchange epochs, so
            // the cost model charges the full extended box.
            SweepOp::ComputeWavefront {
                batch,
                step,
                shrink,
            } => {
                let size = self.prog.batches.size(batch) as u64;
                if size > 0 {
                    let ext = shrink * (self.prog.block() - 1 - step);
                    let mut dims = [0u64; 3];
                    for axis in Axis::ALL {
                        let mut d = plan.sub.ext[axis.index()];
                        for ld in LinkDir::ALL {
                            if ld.axis == axis && plan.neighbors[ld.index()].is_some() {
                                d += ext;
                            }
                        }
                        dims[axis.index()] = d as u64;
                    }
                    self.queue.push_back(Instr::Compute {
                        points: dims[0] * dims[1] * dims[2] * size,
                        rows: dims[0] * dims[1] * size,
                        grids: size,
                    });
                }
            }
            // One slab-fenced grid: "we have to synchronize between every
            // grid-computation" (§VI) — batching aggregates the messages,
            // but the slab-parallel compute is still fenced per grid, so
            // the synchronization penalty grows with the number of grids.
            SweepOp::ApplyBoundarySlab { .. } => {
                self.queue.push_back(Instr::ThreadBarrier);
                self.queue.push_back(Instr::Compute {
                    points: self.unit_points,
                    rows: self.unit_rows,
                    grids: 1,
                });
                self.queue.push_back(Instr::ThreadBarrier);
            }
            SweepOp::ThreadBarrier => self.queue.push_back(Instr::ThreadBarrier),
            // The simulator has no grid buffers to swap; the sweep
            // transition is the cursor wrap in `expand`.
            SweepOp::AdvanceBuffer => {}
        }
    }
}

impl Program for StreamProgram {
    fn next(&mut self) -> Instr {
        loop {
            if let Some(i) = self.queue.pop_front() {
                return i;
            }
            if self.done {
                return Instr::Done;
            }
            self.expand();
            if self.done && self.queue.is_empty() {
                return Instr::Done;
            }
        }
    }
}

/// Build the partition + cartesian map a job runs on.
pub fn job_map(job: &TimedJob) -> CartMap {
    let mode = job.config.approach.exec_mode();
    let partition = Partition::for_cores(job.cores, mode)
        .unwrap_or_else(|| panic!("no standard BGP partition for {} cores", job.cores));
    CartMap::best(partition, job.grid_ext)
}

/// Compile and wrap the programs for every instantiated (rank, thread)
/// slot.
fn build_programs(job: &TimedJob, map: &CartMap, scope: Scope) -> Vec<Box<dyn Program>> {
    let threads = map.partition.threads_per_process();
    let mut programs: Vec<Box<dyn Program>> = Vec::new();
    for rank in Machine::instantiated_ranks(map, scope) {
        let plan = RankPlan::for_rank(map, job.grid_ext, rank, job.bytes_per_point, &job.config);
        let compiled = compile_rank(&job.config, map, &plan, job.n_grids, threads);
        debug_assert_eq!(compiled.len(), threads);
        for prog in compiled {
            programs.push(Box::new(StreamProgram::new(prog)));
        }
    }
    programs
}

/// Run a timed FD job.
pub fn run_timed(job: &TimedJob, model: &CostModel, scope: ScopeSel) -> RunReport {
    if job.cores == 1 {
        return sequential_baseline(job, model);
    }
    run_timed_with_map(job, job_map(job), model, scope)
}

/// Run a timed FD job on an explicit cartesian map — the hook for the
/// `MPI_Cart_create` ablation (`CartMap::with_reorder(…, false)` places
/// ranks linearly, so logical neighbors land hops apart).
pub fn run_timed_with_map(
    job: &TimedJob,
    map: CartMap,
    model: &CostModel,
    scope: ScopeSel,
) -> RunReport {
    let scope = match scope {
        ScopeSel::Full => Scope::Full,
        ScopeSel::Cell => {
            assert!(
                map.partition.is_torus(),
                "unit-cell scope needs a torus partition (≥ 512 nodes)"
            );
            Scope::UnitCell { neighbor_hops: 1 }
        }
        ScopeSel::Auto => {
            if map.partition.is_torus() {
                Scope::UnitCell { neighbor_hops: 1 }
            } else {
                Scope::Full
            }
        }
    };
    let programs = build_programs(job, &map, scope);
    Machine::new(
        map,
        model.clone(),
        job.config.approach.thread_mode(),
        scope,
        programs,
    )
    .run()
}

/// The unreordered variant of [`job_map`] (ranks assigned to nodes in
/// plain linear order, ignoring the torus).
pub fn job_map_unreordered(job: &TimedJob) -> CartMap {
    let reordered = job_map(job);
    CartMap::with_reorder(reordered.partition, reordered.proc_dims, false)
        .unwrap_or_else(|e| panic!("dims were already validated by job_map: {e:?}"))
}

/// The sequential baseline: one core computing every grid whole, no
/// communication — the denominator of the paper's speedup graphs.
pub fn sequential_baseline(job: &TimedJob, model: &CostModel) -> RunReport {
    let points: u64 = job.grid_ext.iter().map(|&e| e as u64).product();
    let rows = (job.grid_ext[0] * job.grid_ext[1]) as u64;
    let mut instrs = Vec::with_capacity(job.config.sweeps);
    for _ in 0..job.config.sweeps {
        instrs.push(Instr::Compute {
            points: points * job.n_grids as u64,
            rows: rows * job.n_grids as u64,
            grids: job.n_grids as u64,
        });
    }
    let partition = Partition::new([1, 1, 1], gpaw_bgp_hw::ExecMode::Smp);
    let map = CartMap::new(partition, [1, 1, 1])
        .unwrap_or_else(|e| panic!("1-node map is always valid: {e:?}"));
    let mut programs: Vec<Box<dyn Program>> = vec![Box::new(gpaw_simmpi::VecProgram::new(instrs))];
    for _ in 1..4 {
        programs.push(Box::new(gpaw_simmpi::VecProgram::new(vec![])));
    }
    Machine::new(
        map,
        model.clone(),
        gpaw_simmpi::ThreadMode::Single,
        Scope::Full,
        programs,
    )
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Approach;
    use gpaw_grid::stencil::BoundaryCond;

    fn job(cores: usize, approach: Approach, batch: usize) -> TimedJob {
        TimedJob {
            cores,
            grid_ext: [48, 48, 48],
            n_grids: 16,
            bytes_per_point: 8,
            config: FdConfig::paper(approach).with_batch(batch),
        }
    }

    fn model() -> CostModel {
        CostModel::bgp()
    }

    #[test]
    fn sequential_baseline_is_pure_compute() {
        let j = job(1, Approach::FlatOptimized, 1);
        let r = sequential_baseline(&j, &model());
        assert_eq!(r.messages, 0);
        assert_eq!(r.bytes_per_node, 0);
        let expect = model().compute_time(16 * 48 * 48 * 48, 16 * 48 * 48, 16);
        assert_eq!(r.makespan, expect);
    }

    #[test]
    fn all_approaches_complete_and_send_messages() {
        for approach in Approach::GRAPHED {
            let j = job(32, approach, 4);
            let r = run_timed(&j, &model(), ScopeSel::Full);
            assert!(r.messages > 0, "{approach:?} sent nothing");
            assert!(r.makespan.as_ps() > 0);
        }
    }

    #[test]
    fn flat_static_runs_on_timed_plane() {
        let j = job(32, Approach::FlatStatic, 4);
        let r = run_timed(&j, &model(), ScopeSel::Full);
        assert!(r.messages > 0);
    }

    #[test]
    fn temporal_blocking_halves_timed_messages() {
        // Same decomposition, same batches, same endpoints — but the
        // fused schedule exchanges once per block of 2 sweeps, so the
        // simulated machine observes exactly half the messages.
        let mut tb = job(32, Approach::TemporalBlocked, 4);
        tb.config = tb.config.with_sweeps(4);
        let mut hm = job(32, Approach::HybridMultiple, 4);
        hm.config = hm.config.with_sweeps(4);
        let rt = run_timed(&tb, &model(), ScopeSel::Full);
        let rh = run_timed(&hm, &model(), ScopeSel::Full);
        assert!(rt.messages > 0);
        assert_eq!(rt.messages * 2, rh.messages);
        assert!(rt.makespan.as_ps() > 0);
    }

    #[test]
    fn parallel_beats_sequential() {
        let seq = run_timed(
            &job(1, Approach::FlatOptimized, 4),
            &model(),
            ScopeSel::Full,
        );
        let par = run_timed(
            &job(32, Approach::FlatOptimized, 4),
            &model(),
            ScopeSel::Full,
        );
        let speedup = par.speedup_vs(&seq);
        assert!(
            speedup > 4.0,
            "32 cores should beat 1 core clearly, got {speedup}"
        );
    }

    #[test]
    fn flat_optimized_beats_flat_original() {
        let seq = run_timed(&job(1, Approach::FlatOriginal, 1), &model(), ScopeSel::Full);
        let orig = run_timed(
            &job(64, Approach::FlatOriginal, 1),
            &model(),
            ScopeSel::Full,
        );
        let opt = run_timed(
            &job(64, Approach::FlatOptimized, 8),
            &model(),
            ScopeSel::Full,
        );
        assert!(
            opt.makespan < orig.makespan,
            "optimized {} vs original {}",
            opt.makespan,
            orig.makespan
        );
        let _ = seq;
    }

    #[test]
    fn batching_reduces_messages() {
        let unbatched = run_timed(
            &job(32, Approach::FlatOptimized, 1),
            &model(),
            ScopeSel::Full,
        );
        let batched = run_timed(
            &job(32, Approach::FlatOptimized, 8),
            &model(),
            ScopeSel::Full,
        );
        assert!(batched.messages < unbatched.messages);
        // Payload bytes are identical — batching only concatenates.
        assert_eq!(batched.bytes_per_node, unbatched.bytes_per_node);
    }

    #[test]
    fn hybrid_communicates_less_per_node_than_flat() {
        let flat = run_timed(
            &job(64, Approach::FlatOptimized, 4),
            &model(),
            ScopeSel::Full,
        );
        let hyb = run_timed(
            &job(64, Approach::HybridMultiple, 4),
            &model(),
            ScopeSel::Full,
        );
        assert!(
            hyb.bytes_per_node < flat.bytes_per_node,
            "hybrid {} vs flat {}",
            hyb.bytes_per_node,
            flat.bytes_per_node
        );
    }

    #[test]
    fn cell_scope_matches_full_scope_on_torus() {
        // 512 nodes; keep the job small so the full run stays fast.
        let mut j = job(2048, Approach::HybridMultiple, 4);
        j.grid_ext = [64, 64, 64];
        j.n_grids = 8;
        let full = run_timed(&j, &model(), ScopeSel::Full);
        let cell = run_timed(&j, &model(), ScopeSel::Cell);
        assert_eq!(full.makespan, cell.makespan);
        assert_eq!(full.bytes_per_node, cell.bytes_per_node);
    }

    #[test]
    fn cell_scope_matches_full_scope_virtual_mode() {
        let mut j = job(2048, Approach::FlatOptimized, 4);
        j.grid_ext = [64, 64, 64];
        j.n_grids = 8;
        let full = run_timed(&j, &model(), ScopeSel::Full);
        let cell = run_timed(&j, &model(), ScopeSel::Cell);
        assert_eq!(full.makespan, cell.makespan);
    }

    #[test]
    fn master_only_pays_per_grid_barriers() {
        // The synchronization penalty is proportional to the number of
        // grids (§VI) regardless of batching: raising the barrier cost by
        // Δ lengthens a master-only run by ≈ 2·grids·Δ (two barriers per
        // grid on the critical path), but a hybrid-multiple run by only
        // ≈ Δ (one barrier per sweep).
        let base = model();
        let mut pricey = model();
        pricey.t_barrier = base.t_barrier + gpaw_des::SimDuration::from_us(50);
        let j = job(32, Approach::HybridMasterOnly, 8); // 16 grids
        let d_mo = run_timed(&j, &pricey, ScopeSel::Full)
            .makespan
            .saturating_sub(run_timed(&j, &base, ScopeSel::Full).makespan);
        let expect = gpaw_des::SimDuration::from_us(50) * (2 * 16);
        let lo = expect.as_ps() as f64 * 0.8;
        let hi = expect.as_ps() as f64 * 1.3;
        assert!(
            (lo..hi).contains(&(d_mo.as_ps() as f64)),
            "per-grid barrier delta {d_mo} (expected ≈ {expect})"
        );
        let h = job(32, Approach::HybridMultiple, 8);
        let d_hyb = run_timed(&h, &pricey, ScopeSel::Full)
            .makespan
            .saturating_sub(run_timed(&h, &base, ScopeSel::Full).makespan);
        assert!(
            d_hyb.as_ps() < expect.as_ps() / 8,
            "hybrid multiple pays a constant penalty, got {d_hyb}"
        );
    }
    #[test]
    fn zero_bc_sends_fewer_messages_than_periodic() {
        let mut j = job(32, Approach::FlatOptimized, 4);
        j.config.bc = BoundaryCond::Zero;
        let zero = run_timed(&j, &model(), ScopeSel::Full);
        let per = run_timed(
            &job(32, Approach::FlatOptimized, 4),
            &model(),
            ScopeSel::Full,
        );
        assert!(zero.messages < per.messages);
    }

    #[test]
    fn sweeps_scale_time_roughly_linearly() {
        let mut j = job(32, Approach::HybridMultiple, 4);
        let one = run_timed(&j, &model(), ScopeSel::Full);
        j.config = j.config.with_sweeps(3);
        let three = run_timed(&j, &model(), ScopeSel::Full);
        let ratio = three.seconds() / one.seconds();
        assert!(
            (2.5..3.5).contains(&ratio),
            "3 sweeps should cost ≈ 3×, got {ratio}"
        );
    }
}
