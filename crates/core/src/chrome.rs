//! Chrome `trace_event` export of span ledgers.
//!
//! Every plane of the reproduction records the same span vocabulary
//! ([`SpanKind`]); this module renders those ledgers in the Chrome trace
//! event format (the JSON array `chrome://tracing` and Perfetto open), so a
//! run's timeline can be inspected visually instead of only as aggregate
//! fractions.
//!
//! Two granularities are supported, because the planes retain different
//! amounts of raw data:
//!
//! * **exact timelines** ([`ChromeTrace::add_thread_spans`]) from raw
//!   [`Span`] lists — available wherever a tracer kept its log, e.g. the
//!   native runtime's [`crate::trace::WallTracer::finish_with_spans`];
//! * **aggregate summaries** ([`ChromeTrace::add_thread_summary`]) from
//!   [`ThreadPhases`] — the per-kind totals laid back-to-back from the
//!   thread's start. The timed machine and `RunReport` keep only these
//!   O(1) aggregates, so their export shows *how much* time each phase
//!   took per thread, not the real interleaving; summary events carry a
//!   `"summary"` category so the viewer distinguishes them.
//!
//! Ranks map to trace processes (`pid`), thread slots to trace threads
//! (`tid`); timestamps are microseconds as the format requires.

use crate::report::Json;
use crate::trace::{Span, SpanKind, ThreadPhases, ThreadSpans};
use gpaw_des::{SimDuration, SimTime};

/// Microseconds since the run epoch (the unit of `ts`/`dur` fields).
fn us(d: SimDuration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// A trace under construction: a flat list of Chrome trace events.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name the trace process `pid` (a rank, or a whole figure point).
    pub fn name_process(&mut self, pid: usize, name: &str) {
        self.events.push(metadata("process_name", pid, 0, name));
    }

    /// Name thread `tid` of process `pid`.
    pub fn name_thread(&mut self, pid: usize, tid: usize, name: &str) {
        self.events.push(metadata("thread_name", pid, tid, name));
    }

    /// Add one thread's exact span timeline as complete (`"X"`) events.
    pub fn add_thread_spans(&mut self, pid: usize, tid: usize, spans: &[Span]) {
        for s in spans {
            self.events.push(complete_event(
                s.kind.key(),
                "span",
                pid,
                tid,
                us(s.start.since(SimTime::ZERO)),
                us(s.duration()),
            ));
        }
    }

    /// Add a whole run's exact timelines: one trace thread per
    /// (rank, slot), named and laid out under process `pid_base + rank`.
    pub fn add_run_spans(&mut self, pid_base: usize, timelines: &[ThreadSpans]) {
        let mut last_rank = None;
        for t in timelines {
            let pid = pid_base + t.rank;
            if last_rank != Some(t.rank) {
                self.name_process(pid, &format!("rank {}", t.rank));
                last_rank = Some(t.rank);
            }
            self.name_thread(pid, t.slot, &format!("rank {} slot {}", t.rank, t.slot));
            self.add_thread_spans(pid, t.slot, &t.spans);
        }
    }

    /// Add one thread's aggregate phase totals as a synthetic back-to-back
    /// layout starting at the epoch: one `"X"` event per non-empty kind, in
    /// [`SpanKind::ALL`] order, under the `"summary"` category. Durations
    /// are faithful; the ordering within the thread's lifetime is not.
    pub fn add_thread_summary(&mut self, pid: usize, t: &ThreadPhases) {
        self.name_thread(pid, t.slot, &format!("rank {} slot {}", t.rank, t.slot));
        let mut cursor = SimDuration::ZERO;
        for kind in SpanKind::ALL {
            let d = t.spans.get(kind);
            if d == SimDuration::ZERO {
                continue;
            }
            self.events.push(complete_event(
                kind.key(),
                "summary",
                pid,
                t.slot,
                us(cursor),
                us(d),
            ));
            cursor += d;
        }
        if cursor < t.finish {
            self.events.push(complete_event(
                "idle",
                "summary",
                pid,
                t.slot,
                us(cursor),
                us(t.finish - cursor),
            ));
        }
    }

    /// Add a whole run's aggregate summaries under process `pid`, named
    /// `name` — the export path for [`gpaw_simmpi::RunReport`]-shaped
    /// results, which keep only per-thread aggregates.
    pub fn add_run_summary(&mut self, pid: usize, name: &str, threads: &[ThreadPhases]) {
        self.name_process(pid, name);
        // Trace tids must be unique per process; (rank, slot) pairs are, so
        // flatten them in ledger order.
        for (tid, t) in threads.iter().enumerate() {
            let mut t = t.clone();
            let slot = t.slot;
            t.slot = tid;
            self.add_thread_summary(pid, &t);
            // Restore the human-readable name after add_thread_summary
            // named it by the flattened tid.
            self.events.pop_if_metadata_name(pid, tid);
            self.events.push(metadata(
                "thread_name",
                pid,
                tid,
                &format!("rank {} slot {slot}", t.rank),
            ));
        }
    }

    /// Render the trace as a Chrome trace JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(self.events.clone())),
            ("displayTimeUnit".into(), Json::Str("ms".into())),
        ])
    }

    /// Render to a JSON string.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Write the trace to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.render() + "\n")
    }
}

/// Internal helper trait: drop the thread_name metadata event
/// `add_thread_summary` just pushed so `add_run_summary` can replace it.
trait PopIfMetadataName {
    fn pop_if_metadata_name(&mut self, pid: usize, tid: usize);
}

impl PopIfMetadataName for Vec<Json> {
    fn pop_if_metadata_name(&mut self, pid: usize, tid: usize) {
        // The event pushed first by add_thread_summary is the thread_name
        // metadata; find the most recent one for (pid, tid) and remove it.
        if let Some(pos) = self.iter().rposition(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("pid").and_then(Json::as_f64) == Some(pid as f64)
                && e.get("tid").and_then(Json::as_f64) == Some(tid as f64)
        }) {
            self.remove(pos);
        }
    }
}

fn metadata(name: &str, pid: usize, tid: usize, value: &str) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::Num(pid as f64)),
        ("tid".into(), Json::Num(tid as f64)),
        (
            "args".into(),
            Json::Obj(vec![("name".into(), Json::Str(value.into()))]),
        ),
    ])
}

fn complete_event(name: &str, cat: &str, pid: usize, tid: usize, ts: f64, dur: f64) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("cat".into(), Json::Str(cat.into())),
        ("ph".into(), Json::Str("X".into())),
        ("ts".into(), Json::Num(ts)),
        ("dur".into(), Json::Num(dur)),
        ("pid".into(), Json::Num(pid as f64)),
        ("tid".into(), Json::Num(tid as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpaw_des::SpanAgg;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_ns(ns)
    }

    fn span(kind: SpanKind, a: u64, b: u64) -> Span {
        Span {
            kind,
            start: t(a),
            end: t(b),
        }
    }

    #[test]
    fn exact_timeline_events_carry_positions_and_durations() {
        let mut tr = ChromeTrace::new();
        tr.add_run_spans(
            0,
            &[ThreadSpans {
                rank: 1,
                slot: 0,
                spans: vec![
                    span(SpanKind::Compute, 1_000, 4_000),
                    span(SpanKind::Wait, 4_000, 9_000),
                ],
            }],
        );
        let j = tr.to_json();
        let events = j.get("traceEvents").and_then(Json::as_arr).unwrap();
        // process_name + thread_name + 2 spans.
        assert_eq!(events.len(), 4);
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].get("name").and_then(Json::as_str), Some("compute"));
        assert_eq!(xs[0].get("ts").and_then(Json::as_f64), Some(1.0)); // µs
        assert_eq!(xs[0].get("dur").and_then(Json::as_f64), Some(3.0));
        assert_eq!(xs[1].get("name").and_then(Json::as_str), Some("wait"));
        assert_eq!(xs[0].get("pid").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn summary_layout_tiles_the_thread_lifetime() {
        let mut spans = SpanAgg::new();
        spans.add(SpanKind::Compute, SimDuration::from_ns(6_000));
        spans.add(SpanKind::Post, SimDuration::from_ns(2_000));
        let phases = ThreadPhases {
            rank: 0,
            slot: 1,
            finish: SimDuration::from_ns(10_000),
            spans,
        };
        let mut tr = ChromeTrace::new();
        tr.add_thread_summary(7, &phases);
        let j = tr.to_json();
        let events = j.get("traceEvents").and_then(Json::as_arr).unwrap();
        let xs: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        // compute, post, then the idle remainder; back to back.
        assert_eq!(xs.len(), 3);
        let mut cursor = 0.0;
        let mut total = 0.0;
        for x in &xs {
            assert_eq!(x.get("ts").and_then(Json::as_f64), Some(cursor));
            let dur = x.get("dur").and_then(Json::as_f64).unwrap();
            cursor += dur;
            total += dur;
            assert_eq!(x.get("cat").and_then(Json::as_str), Some("summary"));
        }
        assert!((total - 10.0).abs() < 1e-12, "events tile [0, finish]");
        assert_eq!(xs[2].get("name").and_then(Json::as_str), Some("idle"));
    }

    #[test]
    fn rendered_trace_is_valid_json() {
        let mut tr = ChromeTrace::new();
        tr.add_run_summary(
            3,
            "point \"x\"",
            &[ThreadPhases {
                rank: 0,
                slot: 0,
                finish: SimDuration::from_ns(5),
                spans: SpanAgg::new(),
            }],
        );
        let text = tr.render();
        let parsed = Json::parse(&text).expect("chrome trace renders as valid JSON");
        assert!(parsed.get("traceEvents").is_some());
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
    }
}
