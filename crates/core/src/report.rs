//! Machine-readable experiment reports.
//!
//! The figure binaries print human tables; CI and regression tooling need
//! the same numbers structured. This module provides a dependency-free
//! JSON value type ([`Json`]) with a writer *and* a parser (the perf gate
//! reads its committed baseline back), plus [`ExperimentReport`] /
//! [`PointReport`] — the serializable form of one experiment's figure
//! points, including the span-derived per-phase utilization breakdowns of
//! [`gpaw_simmpi::RunReport`].
//!
//! Deliberately not serde: the repo builds offline with zero external
//! dependencies, and the schema is small enough that a hand-rolled
//! renderer/parser (~150 lines) is the cheaper maintenance burden.

use gpaw_des::{SpanAgg, SpanKind};
use gpaw_simmpi::RunReport;
use std::fmt::Write as _;

/// Schema version stamped into every report; bump on breaking changes.
pub const SCHEMA_VERSION: u64 = 1;

/// A JSON value. Objects keep insertion order so output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => render_num(*x, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry the byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn render_num(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if x.fract() == 0.0 && x.abs() < 9e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        s.push(char::from_u32(code).ok_or("invalid \\u escape".to_string())?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = match rest.chars().next() {
                    Some(c) => c,
                    None => unreachable!("the Some(_) arm guarantees a remaining byte"),
                };
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|_| format!("bad number at byte {start}"))
}

/// The span-kind totals of one run as a JSON object of per-kind fractions
/// of aggregate thread time, plus the uncovered remainder as `"idle"`.
pub fn phase_fractions_json(phases: &SpanAgg, thread_secs_total: f64) -> Json {
    let mut members = Vec::new();
    let mut covered = 0.0;
    for kind in SpanKind::ALL {
        let f = if thread_secs_total > 0.0 {
            phases.get(kind).as_secs_f64() / thread_secs_total
        } else {
            0.0
        };
        covered += f;
        members.push((kind.key().to_string(), Json::Num(f)));
    }
    members.push(("idle".to_string(), Json::Num((1.0 - covered).max(0.0))));
    Json::Obj(members)
}

/// One figure point in machine-readable form.
#[derive(Debug, Clone)]
pub struct PointReport {
    /// Point identifier, unique within the experiment (e.g.
    /// `"fig5/256/hybrid-multiple"`).
    pub name: String,
    /// Approach label (empty for non-approach points like pings).
    pub approach: String,
    /// Total CPU cores simulated.
    pub cores: usize,
    /// Batch size used.
    pub batch: usize,
    /// The run itself.
    pub run: RunReport,
}

impl PointReport {
    /// Serialize, including the per-phase utilization breakdown.
    pub fn to_json(&self) -> Json {
        let r = &self.run;
        let thread_secs = r.seconds() * r.threads as f64;
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("approach".into(), Json::Str(self.approach.clone())),
            ("cores".into(), Json::Num(self.cores as f64)),
            ("batch".into(), Json::Num(self.batch as f64)),
            ("seconds".into(), Json::Num(r.seconds())),
            ("threads".into(), Json::Num(r.threads as f64)),
            ("messages".into(), Json::Num(r.messages as f64)),
            ("bytes_per_node".into(), Json::Num(r.bytes_per_node as f64)),
            (
                "network_bytes_per_node".into(),
                Json::Num(r.network_bytes_per_node as f64),
            ),
            ("flops".into(), Json::Num(r.flops)),
            ("utilization".into(), Json::Num(r.utilization)),
            (
                "utilization_from_spans".into(),
                Json::Num(r.utilization_from_spans()),
            ),
            (
                "utilization_paper_scale".into(),
                Json::Num(r.utilization_paper_scale()),
            ),
            (
                "max_link_utilization".into(),
                Json::Num(r.max_link_utilization),
            ),
            (
                "phase_fractions".into(),
                phase_fractions_json(&r.phases, thread_secs),
            ),
            (
                "net".into(),
                Json::Obj(vec![
                    ("nodes".into(), Json::Num(r.net.nodes as f64)),
                    ("bytes_total".into(), Json::Num(r.net.bytes_total as f64)),
                    (
                        "messages_total".into(),
                        Json::Num(r.net.messages_total as f64),
                    ),
                    (
                        "link_busy_max_secs".into(),
                        Json::Num(r.net.link_busy_max.as_secs_f64()),
                    ),
                ]),
            ),
        ])
    }
}

/// A whole experiment's machine-readable report.
#[derive(Debug, Clone, Default)]
pub struct ExperimentReport {
    /// Experiment name (e.g. `"fig5_speedup"`).
    pub name: String,
    /// Figure points, in emission order.
    pub points: Vec<PointReport>,
    /// Extra scalar metrics outside any single run (e.g. ping
    /// bandwidths), as (name, value) pairs.
    pub scalars: Vec<(String, f64)>,
}

impl ExperimentReport {
    /// Start an empty report.
    pub fn new(name: &str) -> ExperimentReport {
        ExperimentReport {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Record one figure point.
    pub fn push(
        &mut self,
        name: String,
        approach: &str,
        cores: usize,
        batch: usize,
        run: RunReport,
    ) {
        self.points.push(PointReport {
            name,
            approach: approach.to_string(),
            cores,
            batch,
            run,
        });
    }

    /// Record a named scalar metric.
    pub fn scalar(&mut self, name: &str, value: f64) {
        self.scalars.push((name.to_string(), value));
    }

    /// Serialize the whole report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
            ("experiment".into(), Json::Str(self.name.clone())),
            (
                "points".into(),
                Json::Arr(self.points.iter().map(PointReport::to_json).collect()),
            ),
            (
                "scalars".into(),
                Json::Obj(
                    self.scalars
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Write the report to `path` (pretty enough for diffs: one point per
    /// line would complicate the writer; compact JSON plus `git diff
    /// --word-diff` works fine in practice).
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Str("x\"y\\z\nw".into())),
            (
                "c".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-3.0)]),
            ),
            ("d".into(), Json::Obj(vec![])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, v);
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Json::Num(16384.0).render(), "16384");
        assert_eq!(Json::Num(1e10).render(), "10000000000");
        assert_eq!(Json::Num(0.5).render(), "0.5");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_numbers() {
        let v = Json::parse(r#"{"s":"aA\n","n":-1.25e2}"#).expect("parses");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("aA\n"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-125.0));
    }

    #[test]
    fn phase_fractions_cover_unit_interval() {
        let mut agg = SpanAgg::new();
        agg.add(SpanKind::Compute, gpaw_des::SimDuration::from_secs(3));
        agg.add(SpanKind::Wait, gpaw_des::SimDuration::from_secs(1));
        let j = phase_fractions_json(&agg, 8.0);
        let compute = j.get("compute").and_then(Json::as_f64).unwrap();
        let wait = j.get("wait").and_then(Json::as_f64).unwrap();
        let idle = j.get("idle").and_then(Json::as_f64).unwrap();
        assert!((compute - 0.375).abs() < 1e-12);
        assert!((wait - 0.125).abs() < 1e-12);
        assert!((idle - 0.5).abs() < 1e-12);
    }
}
