//! Approach selection and engine parameters.

use gpaw_bgp_hw::ExecMode;
use gpaw_grid::stencil::{BoundaryCond, StencilCoeffs};
use gpaw_simmpi::ThreadMode;

/// The programming approaches of §VI (plus the §VII diagnostic variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// The original GPAW scheme: virtual node mode, blocking
    /// dimension-by-dimension halo exchange, no batching, no overlap.
    FlatOriginal,
    /// Virtual node mode with every §V optimization: simultaneous
    /// non-blocking exchange of all three dimensions, double buffering
    /// across batches, and grid batching.
    FlatOptimized,
    /// One process per node, four threads, every thread communicates for
    /// its own whole grids (`MPI_THREAD_MULTIPLE`); one synchronization per
    /// sweep.
    HybridMultiple,
    /// One process per node, four threads, only the master communicates
    /// (`MPI_THREAD_SINGLE`); each grid is computed in four x-slabs
    /// fenced by two thread barriers.
    HybridMasterOnly,
    /// §VII's modified flat: virtual-mode ranks, but the grids are divided
    /// statically into four sub-groups (one per core) over a *node-level*
    /// decomposition. Performance-equivalent to `HybridMultiple`; not valid
    /// in real GPAW (violates the same-subset requirement) — a diagnostic,
    /// excluded from the paper's graphs but runnable on all three planes
    /// since its schedule lives in the compiler like everyone else's.
    FlatStatic,
    /// Temporal blocking (Wittmann–Hager–Wellein): fuse `k` stencil sweeps
    /// into one pass with ghost layers of depth `k·h`, exchanging once per
    /// block instead of once per sweep — the same bytes move in `1/k` as
    /// many messages and exchange epochs. Runs in SMP mode with every
    /// thread communicating for its own grids, like `HybridMultiple`; the
    /// fused block is `FdConfig::effective_block`.
    TemporalBlocked,
}

impl Approach {
    /// All approaches of the paper's graphs (excludes the diagnostics).
    pub const GRAPHED: [Approach; 4] = [
        Approach::FlatOriginal,
        Approach::FlatOptimized,
        Approach::HybridMultiple,
        Approach::HybridMasterOnly,
    ];

    /// Every approach the compiler can emit, in canonical order. This is
    /// THE strategy list: soaks, suites, and `all_strategies()` all derive
    /// from it, so a new approach registers everywhere at once.
    pub const ALL: [Approach; 6] = [
        Approach::FlatOriginal,
        Approach::FlatOptimized,
        Approach::HybridMultiple,
        Approach::HybridMasterOnly,
        Approach::FlatStatic,
        Approach::TemporalBlocked,
    ];

    /// Parse the kebab-case command-line name of an approach.
    pub fn parse(name: &str) -> Option<Approach> {
        Approach::ALL.into_iter().find(|a| a.slug() == name)
    }

    /// The kebab-case name: command-line `--approach` values and per-
    /// approach checkpoint subdirectories. Inverse of [`Approach::parse`].
    pub fn slug(self) -> &'static str {
        match self {
            Approach::FlatOriginal => "flat-original",
            Approach::FlatOptimized => "flat-optimized",
            Approach::HybridMultiple => "hybrid-multiple",
            Approach::HybridMasterOnly => "hybrid-master-only",
            Approach::FlatStatic => "flat-static",
            Approach::TemporalBlocked => "temporal-blocked",
        }
    }

    /// Node execution mode this approach requires.
    pub fn exec_mode(self) -> ExecMode {
        match self {
            Approach::FlatOriginal | Approach::FlatOptimized | Approach::FlatStatic => {
                ExecMode::Virtual
            }
            Approach::HybridMultiple | Approach::HybridMasterOnly | Approach::TemporalBlocked => {
                ExecMode::Smp
            }
        }
    }

    /// MPI thread support level this approach requires.
    pub fn thread_mode(self) -> ThreadMode {
        match self {
            Approach::HybridMultiple | Approach::TemporalBlocked => ThreadMode::Multiple,
            _ => ThreadMode::Single,
        }
    }

    /// True when the grids are decomposed at node granularity (4× coarser
    /// than virtual mode) — the property the paper identifies as the sole
    /// source of the hybrid advantage.
    pub fn node_level_decomposition(self) -> bool {
        !matches!(self, Approach::FlatOriginal | Approach::FlatOptimized)
    }

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Approach::FlatOriginal => "Flat original",
            Approach::FlatOptimized => "Flat optimized",
            Approach::HybridMultiple => "Hybrid multiple",
            Approach::HybridMasterOnly => "Hybrid master-only",
            Approach::FlatStatic => "Flat static-groups",
            Approach::TemporalBlocked => "Temporal blocked",
        }
    }
}

/// Parameters of one FD engine run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdConfig {
    /// Which programming approach to run.
    pub approach: Approach,
    /// Grids per message (1 = batching off). `FlatOriginal` ignores this
    /// (it predates batching).
    pub batch: usize,
    /// Shrink the first batch (§V-A: "increase the batch-size continuously
    /// in the initial stage") so double buffering exposes less cold-start
    /// latency.
    pub growing_first_batch: bool,
    /// Post batch *i+1*'s exchange before waiting on batch *i*
    /// (§V-A double buffering). `FlatOriginal` ignores this.
    pub double_buffer: bool,
    /// Global boundary condition (the paper benchmarks periodic).
    pub bc: BoundaryCond,
    /// Applications of the FD operator per run.
    pub sweeps: usize,
    /// Maximum sweeps fused per temporal block (`TemporalBlocked` only;
    /// every other approach exchanges per sweep regardless). The block
    /// actually compiled is [`FdConfig::effective_block`].
    pub temporal_depth: usize,
}

impl FdConfig {
    /// The paper's configuration of an approach: every §V optimization on
    /// for everything except `FlatOriginal`.
    pub fn paper(approach: Approach) -> FdConfig {
        let optimized = !matches!(approach, Approach::FlatOriginal);
        FdConfig {
            approach,
            batch: 1,
            growing_first_batch: false,
            double_buffer: optimized,
            bc: BoundaryCond::Periodic,
            sweeps: 1,
            temporal_depth: if matches!(approach, Approach::TemporalBlocked) {
                2
            } else {
                1
            },
        }
    }

    /// Set the batch size.
    pub fn with_batch(mut self, batch: usize) -> FdConfig {
        assert!(batch >= 1);
        self.batch = batch;
        self
    }

    /// Set the sweep count.
    pub fn with_sweeps(mut self, sweeps: usize) -> FdConfig {
        assert!(sweeps >= 1);
        self.sweeps = sweeps;
        self
    }

    /// Set the maximum temporal block depth (≥ 1).
    pub fn with_temporal_depth(mut self, depth: usize) -> FdConfig {
        assert!(depth >= 1);
        self.temporal_depth = depth;
        self
    }

    /// Effective batch size (FlatOriginal always exchanges per grid).
    pub fn effective_batch(&self) -> usize {
        if self.approach == Approach::FlatOriginal {
            1
        } else {
            self.batch
        }
    }

    /// Sweeps actually fused per exchange: 1 for every non-blocked
    /// approach; for `TemporalBlocked` the largest divisor of `sweeps`
    /// that is at most `temporal_depth`, so the run always decomposes
    /// into whole blocks (a prime sweep count degrades gracefully toward
    /// depth 1 rather than needing a ragged tail block).
    pub fn effective_block(&self) -> usize {
        if self.approach != Approach::TemporalBlocked {
            return 1;
        }
        let cap = self.temporal_depth.max(1);
        (1..=cap.min(self.sweeps))
            .filter(|&k| self.sweeps.is_multiple_of(k))
            .max()
            .unwrap_or(1)
    }

    /// Ghost-layer depth the grids need: one stencil halo per fused sweep.
    pub fn halo_depth(&self) -> usize {
        self.effective_block() * StencilCoeffs::HALO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_match_the_paper_table() {
        use Approach::*;
        assert_eq!(FlatOriginal.exec_mode(), ExecMode::Virtual);
        assert_eq!(FlatOptimized.exec_mode(), ExecMode::Virtual);
        assert_eq!(HybridMultiple.exec_mode(), ExecMode::Smp);
        assert_eq!(HybridMasterOnly.exec_mode(), ExecMode::Smp);
        assert_eq!(HybridMultiple.thread_mode(), ThreadMode::Multiple);
        assert_eq!(HybridMasterOnly.thread_mode(), ThreadMode::Single);
        assert_eq!(FlatOptimized.thread_mode(), ThreadMode::Single);
    }

    #[test]
    fn decomposition_granularity() {
        assert!(!Approach::FlatOptimized.node_level_decomposition());
        assert!(Approach::HybridMultiple.node_level_decomposition());
        assert!(Approach::FlatStatic.node_level_decomposition());
    }

    #[test]
    fn paper_config_defaults() {
        let orig = FdConfig::paper(Approach::FlatOriginal);
        assert!(!orig.double_buffer);
        assert_eq!(orig.effective_batch(), 1);
        // Even if someone sets a batch, FlatOriginal ignores it.
        assert_eq!(orig.with_batch(8).effective_batch(), 1);
        let opt = FdConfig::paper(Approach::FlatOptimized).with_batch(8);
        assert!(opt.double_buffer);
        assert_eq!(opt.effective_batch(), 8);
    }

    #[test]
    fn slugs_round_trip_through_parse() {
        for a in Approach::ALL {
            assert_eq!(Approach::parse(a.slug()), Some(a));
        }
        assert_eq!(Approach::parse("no-such-approach"), None);
        assert_eq!(Approach::ALL.len(), 6);
        // The graphed set is a strict prefix of the canonical order.
        assert_eq!(&Approach::ALL[..4], &Approach::GRAPHED[..]);
    }

    #[test]
    fn temporal_block_divides_the_sweep_count() {
        let tb = FdConfig::paper(Approach::TemporalBlocked);
        assert_eq!(tb.temporal_depth, 2);
        assert_eq!(tb.with_sweeps(4).effective_block(), 2);
        assert_eq!(tb.with_sweeps(4).halo_depth(), 4);
        // A prime sweep count has no divisor ≤ 2 other than 1.
        assert_eq!(tb.with_sweeps(3).effective_block(), 1);
        assert_eq!(tb.with_sweeps(3).halo_depth(), 2);
        // Depth 3 over 9 sweeps fuses 3 at a time.
        assert_eq!(
            tb.with_temporal_depth(3).with_sweeps(9).effective_block(),
            3
        );
        // A depth larger than the sweep count clamps to the sweep count.
        assert_eq!(
            tb.with_temporal_depth(8).with_sweeps(4).effective_block(),
            4
        );
        // Every non-blocked approach exchanges per sweep regardless.
        let hm = FdConfig::paper(Approach::HybridMultiple)
            .with_sweeps(4)
            .with_temporal_depth(2);
        assert_eq!(hm.effective_block(), 1);
        assert_eq!(hm.halo_depth(), StencilCoeffs::HALO);
    }

    #[test]
    fn temporal_blocked_modes_match_hybrid_multiple() {
        use Approach::TemporalBlocked;
        assert_eq!(TemporalBlocked.exec_mode(), ExecMode::Smp);
        assert_eq!(TemporalBlocked.thread_mode(), ThreadMode::Multiple);
        assert!(TemporalBlocked.node_level_decomposition());
    }
}
