//! Approach selection and engine parameters.

use gpaw_bgp_hw::ExecMode;
use gpaw_grid::stencil::BoundaryCond;
use gpaw_simmpi::ThreadMode;

/// The programming approaches of §VI (plus the §VII diagnostic variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// The original GPAW scheme: virtual node mode, blocking
    /// dimension-by-dimension halo exchange, no batching, no overlap.
    FlatOriginal,
    /// Virtual node mode with every §V optimization: simultaneous
    /// non-blocking exchange of all three dimensions, double buffering
    /// across batches, and grid batching.
    FlatOptimized,
    /// One process per node, four threads, every thread communicates for
    /// its own whole grids (`MPI_THREAD_MULTIPLE`); one synchronization per
    /// sweep.
    HybridMultiple,
    /// One process per node, four threads, only the master communicates
    /// (`MPI_THREAD_SINGLE`); each grid is computed in four x-slabs
    /// fenced by two thread barriers.
    HybridMasterOnly,
    /// §VII's modified flat: virtual-mode ranks, but the grids are divided
    /// statically into four sub-groups (one per core) over a *node-level*
    /// decomposition. Performance-equivalent to `HybridMultiple`; not valid
    /// in real GPAW (violates the same-subset requirement) — a diagnostic,
    /// excluded from the paper's graphs but runnable on all three planes
    /// since its schedule lives in the compiler like everyone else's.
    FlatStatic,
}

impl Approach {
    /// All approaches of the paper's graphs (excludes the diagnostic).
    pub const GRAPHED: [Approach; 4] = [
        Approach::FlatOriginal,
        Approach::FlatOptimized,
        Approach::HybridMultiple,
        Approach::HybridMasterOnly,
    ];

    /// Node execution mode this approach requires.
    pub fn exec_mode(self) -> ExecMode {
        match self {
            Approach::FlatOriginal | Approach::FlatOptimized | Approach::FlatStatic => {
                ExecMode::Virtual
            }
            Approach::HybridMultiple | Approach::HybridMasterOnly => ExecMode::Smp,
        }
    }

    /// MPI thread support level this approach requires.
    pub fn thread_mode(self) -> ThreadMode {
        match self {
            Approach::HybridMultiple => ThreadMode::Multiple,
            _ => ThreadMode::Single,
        }
    }

    /// True when the grids are decomposed at node granularity (4× coarser
    /// than virtual mode) — the property the paper identifies as the sole
    /// source of the hybrid advantage.
    pub fn node_level_decomposition(self) -> bool {
        !matches!(self, Approach::FlatOriginal | Approach::FlatOptimized)
    }

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Approach::FlatOriginal => "Flat original",
            Approach::FlatOptimized => "Flat optimized",
            Approach::HybridMultiple => "Hybrid multiple",
            Approach::HybridMasterOnly => "Hybrid master-only",
            Approach::FlatStatic => "Flat static-groups",
        }
    }
}

/// Parameters of one FD engine run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FdConfig {
    /// Which programming approach to run.
    pub approach: Approach,
    /// Grids per message (1 = batching off). `FlatOriginal` ignores this
    /// (it predates batching).
    pub batch: usize,
    /// Shrink the first batch (§V-A: "increase the batch-size continuously
    /// in the initial stage") so double buffering exposes less cold-start
    /// latency.
    pub growing_first_batch: bool,
    /// Post batch *i+1*'s exchange before waiting on batch *i*
    /// (§V-A double buffering). `FlatOriginal` ignores this.
    pub double_buffer: bool,
    /// Global boundary condition (the paper benchmarks periodic).
    pub bc: BoundaryCond,
    /// Applications of the FD operator per run.
    pub sweeps: usize,
}

impl FdConfig {
    /// The paper's configuration of an approach: every §V optimization on
    /// for everything except `FlatOriginal`.
    pub fn paper(approach: Approach) -> FdConfig {
        let optimized = !matches!(approach, Approach::FlatOriginal);
        FdConfig {
            approach,
            batch: 1,
            growing_first_batch: false,
            double_buffer: optimized,
            bc: BoundaryCond::Periodic,
            sweeps: 1,
        }
    }

    /// Set the batch size.
    pub fn with_batch(mut self, batch: usize) -> FdConfig {
        assert!(batch >= 1);
        self.batch = batch;
        self
    }

    /// Set the sweep count.
    pub fn with_sweeps(mut self, sweeps: usize) -> FdConfig {
        assert!(sweeps >= 1);
        self.sweeps = sweeps;
        self
    }

    /// Effective batch size (FlatOriginal always exchanges per grid).
    pub fn effective_batch(&self) -> usize {
        if self.approach == Approach::FlatOriginal {
            1
        } else {
            self.batch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_match_the_paper_table() {
        use Approach::*;
        assert_eq!(FlatOriginal.exec_mode(), ExecMode::Virtual);
        assert_eq!(FlatOptimized.exec_mode(), ExecMode::Virtual);
        assert_eq!(HybridMultiple.exec_mode(), ExecMode::Smp);
        assert_eq!(HybridMasterOnly.exec_mode(), ExecMode::Smp);
        assert_eq!(HybridMultiple.thread_mode(), ThreadMode::Multiple);
        assert_eq!(HybridMasterOnly.thread_mode(), ThreadMode::Single);
        assert_eq!(FlatOptimized.thread_mode(), ThreadMode::Single);
    }

    #[test]
    fn decomposition_granularity() {
        assert!(!Approach::FlatOptimized.node_level_decomposition());
        assert!(Approach::HybridMultiple.node_level_decomposition());
        assert!(Approach::FlatStatic.node_level_decomposition());
    }

    #[test]
    fn paper_config_defaults() {
        let orig = FdConfig::paper(Approach::FlatOriginal);
        assert!(!orig.double_buffer);
        assert_eq!(orig.effective_batch(), 1);
        // Even if someone sets a batch, FlatOriginal ignores it.
        assert_eq!(orig.with_batch(8).effective_batch(), 1);
        let opt = FdConfig::paper(Approach::FlatOptimized).with_batch(8);
        assert!(opt.double_buffer);
        assert_eq!(opt.effective_batch(), 8);
    }
}
