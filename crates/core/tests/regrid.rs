//! Satellite property test for the degradation plane: the
//! gather→re-shard round trip over supported divisor geometries is
//! bitwise, at uneven extents, for every approach — including
//! temporal-blocked depths, where the shrunken map's sub-extents must
//! still admit the depth-4 exchange.
//!
//! The synthetic fill is a pure function of `(global extent, seed, grid
//! id)`, so two different decompositions of the same epoch describe the
//! same global field; gathering either must produce identical global
//! grids, and re-sharding those onto *any* supported layout must equal
//! that layout's direct fill bit-for-bit (NaN payloads and signed zeros
//! included).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use gpaw_bgp_hw::{CartMap, Partition};
use gpaw_fd::checkpoint::{gather_epoch, reshard_epoch, shard_layout, RegridError, ShardSpec};
use gpaw_fd::exec::SyntheticFill;
use gpaw_fd::plan::decomposition_supports;
use gpaw_fd::{compile_rank, Approach, FdConfig, RankPlan, SnapshotRecord, SweepProgram};
use gpaw_grid::decomp::Subdomain;
use gpaw_grid::grid3::Grid3;

/// Uneven on every axis: no candidate geometry divides these evenly, so
/// the remainder-distribution arithmetic is exercised everywhere.
const GRID_EXT: [usize; 3] = [13, 11, 9];
const N_GRIDS: usize = 6;
const SWEEPS: usize = 4;

struct Geo {
    cfg: FdConfig,
    programs: Vec<Vec<SweepProgram>>,
    nodes: usize,
}

/// Compile every rank's programs for `approach` at `nodes`, or `None`
/// when the node count / thread split / decomposition is unsupported —
/// exactly the filter the degradation plane applies to shrink targets.
fn geo_for(approach: Approach, nodes: usize) -> Option<Geo> {
    let part = Partition::standard(nodes, approach.exec_mode())?;
    let map = CartMap::best(part, GRID_EXT);
    let threads = match approach {
        Approach::HybridMultiple | Approach::HybridMasterOnly | Approach::TemporalBlocked => 4,
        _ => 1,
    };
    map.cores_per_thread(threads).ok()?;
    let cfg = FdConfig::paper(approach).with_sweeps(SWEEPS);
    if !decomposition_supports(&map, GRID_EXT, &cfg) {
        return None;
    }
    let programs = (0..map.ranks())
        .map(|r| {
            let plan = RankPlan::for_rank(&map, GRID_EXT, r, 8, &cfg);
            compile_rank(&cfg, &map, &plan, N_GRIDS, threads)
        })
        .collect();
    Some(Geo {
        cfg,
        programs,
        nodes,
    })
}

/// Each shard's grids filled directly from the global synthetic field —
/// what a run's epoch-0 state looks like on this geometry.
fn filled_records(layout: &[ShardSpec], halo: usize, seed: u64) -> Vec<SnapshotRecord<f64>> {
    layout
        .iter()
        .map(|spec| {
            let grids = spec
                .grid_ids
                .iter()
                .map(|&id| {
                    let mut g = Grid3::<f64>::zeros(spec.sub.ext, halo);
                    f64::fill(&mut g, &spec.sub, GRID_EXT, seed, id);
                    g
                })
                .collect();
            SnapshotRecord {
                rank: spec.rank,
                slot: spec.slot,
                grids,
            }
        })
        .collect()
}

fn interior_bits(g: &Grid3<f64>) -> Vec<u64> {
    g.iter_interior().map(|(_, v)| v.to_bits()).collect()
}

#[test]
fn gather_reshard_round_trip_is_bitwise_across_geometries() {
    let seed = 42;
    for &approach in &Approach::ALL {
        let geos: Vec<Geo> = [1, 2, 4, 8]
            .iter()
            .filter_map(|&n| geo_for(approach, n))
            .collect();
        assert!(
            geos.len() >= 2,
            "{approach:?}: need ≥2 supported geometries to cross-check"
        );
        if approach == Approach::TemporalBlocked {
            assert_eq!(
                geos[0].cfg.halo_depth(),
                4,
                "temporal blocking must be tested at its widened depth"
            );
        }
        // The whole-domain fill is the reference every gather must hit.
        let mut reference: Vec<Grid3<f64>> = Vec::new();
        let whole = Subdomain {
            start: [0; 3],
            ext: GRID_EXT,
        };
        for id in 0..N_GRIDS {
            let mut g = Grid3::<f64>::zeros(GRID_EXT, 2);
            f64::fill(&mut g, &whole, GRID_EXT, seed, id);
            reference.push(g);
        }
        for geo in &geos {
            let halo = geo.cfg.halo_depth();
            let layout = shard_layout(&geo.programs);
            let records = filled_records(&layout, halo, seed);
            let global = gather_epoch(&records, &layout, GRID_EXT, N_GRIDS, halo)
                .unwrap_or_else(|e| panic!("{approach:?} @{} nodes: {e}", geo.nodes));
            for (id, g) in global.iter().enumerate() {
                assert_eq!(
                    interior_bits(g),
                    interior_bits(&reference[id]),
                    "{approach:?} @{} nodes: gathered grid {id} diverges from the global fill",
                    geo.nodes
                );
            }
            // Re-shard onto every *other* geometry: the records must be
            // bit-identical to that geometry's own direct fill.
            for other in &geos {
                if other.nodes == geo.nodes {
                    continue;
                }
                let ohalo = other.cfg.halo_depth();
                let olayout = shard_layout(&other.programs);
                let resharded = reshard_epoch(&global, &olayout, ohalo);
                let direct = filled_records(&olayout, ohalo, seed);
                assert_eq!(resharded.len(), direct.len());
                for (a, b) in resharded.iter().zip(&direct) {
                    assert_eq!((a.rank, a.slot), (b.rank, b.slot));
                    assert_eq!(a.grids.len(), b.grids.len());
                    for (ga, gb) in a.grids.iter().zip(&b.grids) {
                        assert_eq!(ga.n(), gb.n());
                        assert_eq!(
                            interior_bits(ga),
                            interior_bits(gb),
                            "{approach:?}: re-shard {}→{} nodes is not bitwise",
                            geo.nodes,
                            other.nodes
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn adversarial_bit_patterns_survive_the_round_trip() {
    // NaN payloads and signed zeros — the values any lossy re-grid
    // (interpolation, summation reorder) would destroy.
    let geo_a = geo_for(Approach::TemporalBlocked, 2).expect("2 nodes supported");
    let geo_b = geo_for(Approach::TemporalBlocked, 1).expect("1 node supported");
    let halo_a = geo_a.cfg.halo_depth();
    let layout_a = shard_layout(&geo_a.programs);
    let records = filled_records(&layout_a, halo_a, 7);
    let mut global = gather_epoch(&records, &layout_a, GRID_EXT, N_GRIDS, halo_a).unwrap();
    for (id, g) in global.iter_mut().enumerate() {
        g.set(0, 0, 0, f64::from_bits(0x7ff8_0000_0000_0000 | id as u64));
        g.set(1, 2, 3, -0.0);
        g.set(
            (GRID_EXT[0] - 1) as isize,
            (GRID_EXT[1] - 1) as isize,
            (GRID_EXT[2] - 1) as isize,
            f64::from_bits(0xfff8_dead_beef_0000),
        );
    }
    let halo_b = geo_b.cfg.halo_depth();
    let layout_b = shard_layout(&geo_b.programs);
    let resharded = reshard_epoch(&global, &layout_b, halo_b);
    let back = gather_epoch(&resharded, &layout_b, GRID_EXT, N_GRIDS, halo_b).unwrap();
    for (a, b) in global.iter().zip(&back) {
        assert_eq!(interior_bits(a), interior_bits(b));
    }
}

#[test]
fn gather_rejects_missing_and_miscovered_records() {
    let geo = geo_for(Approach::FlatOptimized, 1).expect("1 node supported");
    let halo = geo.cfg.halo_depth();
    let layout = shard_layout(&geo.programs);
    let mut records = filled_records(&layout, halo, 3);
    let dropped = records.pop().unwrap();
    match gather_epoch(&records, &layout, GRID_EXT, N_GRIDS, halo) {
        Err(RegridError::MissingRecord { rank, slot }) => {
            assert_eq!((rank, slot), (dropped.rank, dropped.slot));
        }
        other => panic!("expected MissingRecord, got {other:?}"),
    }
    // A layout that skips one shard leaves grids under-covered.
    let partial = &layout[..layout.len() - 1];
    let full = filled_records(&layout, halo, 3);
    match gather_epoch(&full, partial, GRID_EXT, N_GRIDS, halo) {
        Err(RegridError::Uncovered {
            covered, points, ..
        }) => assert!(covered < points),
        other => panic!("expected Uncovered, got {other:?}"),
    }
}

#[test]
fn decomposition_supports_rejects_sub_halo_extents() {
    // 8 Smp nodes cut [13, 11, 9] into sub-extents as small as 4 — fine
    // for the depth-2 exchange, and exactly at the limit for temporal
    // blocking's depth-4. A finer virtual-mode cut must be rejected for
    // a deep-halo config without panicking.
    let part = Partition::standard(8, gpaw_bgp_hw::ExecMode::Virtual).unwrap();
    let map = CartMap::best(part, [16, 16, 16]);
    let shallow = FdConfig::paper(Approach::FlatOptimized).with_sweeps(SWEEPS);
    // 32 ranks over 16³: the fine cut still admits depth 2...
    assert!(decomposition_supports(&map, [16, 16, 16], &shallow));
    // ...but not a depth-4 temporal-blocked exchange (sub-extents < 4),
    // and not a grid so small the cut leaves sub-halo slivers.
    let deep = FdConfig::paper(Approach::TemporalBlocked).with_sweeps(SWEEPS);
    assert_eq!(deep.halo_depth(), 4);
    assert!(!decomposition_supports(&map, [8, 8, 8], &deep));
    assert!(!decomposition_supports(&map, [4, 4, 4], &shallow));
}
