//! # gpaw-simmpi — an MPI-like layer over the simulated Blue Gene/P
//!
//! This crate executes *rank programs* — streams of MPI-ish instructions
//! ([`instr::Instr`]: `Isend`, `Irecv`, `WaitEpoch`, `Compute`,
//! `ThreadBarrier`, `AllReduce`…) — on the discrete-event model of the
//! machine, charging every instruction the costs of the calibrated
//! [`gpaw_bgp_hw::CostModel`]:
//!
//! * non-blocking sends/receives pay a CPU posting overhead, then progress
//!   through the DMA + torus links without occupying the core (the paper's
//!   latency-hiding lever);
//! * in `MPI_THREAD_MULTIPLE` mode every library call additionally
//!   serializes through a per-process lock with a measurable hold time —
//!   the cost the paper's *hybrid master-only* approach avoids by staying
//!   in `SINGLE` mode;
//! * intra-node messages (virtual-mode ranks sharing a node) bypass the
//!   torus and go through the node's shared-memory bus, occupying the
//!   sending core for the copy;
//! * tag matching follows MPI semantics: `(source, tag)` match with FIFO
//!   ordering per pair, with an unexpected-message queue.
//!
//! The machine can be instantiated at two scopes ([`machine::Scope`]):
//! `Full` simulates every rank (exact, any topology), `UnitCell` simulates
//! one node and mirrors its off-node traffic (exact for SPMD-symmetric
//! schedules on torus partitions, and what makes 16 384-core runs cheap).
//! Equivalence of the two scopes on symmetric workloads is covered by this
//! crate's tests.

pub mod diag;
pub mod instr;
pub mod machine;
pub mod ping;
pub mod report;

pub use instr::{Instr, Program, Tag, VecProgram};
pub use machine::{Machine, Scope, ThreadMode};
pub use report::{RunReport, ThreadPhases};
