//! Shared deadlock-diagnostic wording.
//!
//! Both execution planes can deadlock the same way — a receive whose
//! matching send never arrives — and both report it loudly: the timed
//! machine panics at end of simulation (`Machine::run`), the native
//! fabric's watchdog returns a structured `FabricDiagnostic`
//! (`gpaw_hybrid_rt::fault`). The phrases live here so the two reports
//! read identically and an operator can grep one vocabulary across both
//! planes.

/// The pending operation of a blocked receive: `recv(src=2, tag=77)`.
pub fn pending_recv(src: usize, tag: u64) -> String {
    format!("recv(src={src}, tag={tag})")
}

/// The report header: `deadlock: 3 threads stuck`.
pub fn stuck_header(n: usize, what: &str) -> String {
    format!("deadlock: {n} {what} stuck")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phrases_are_stable() {
        assert_eq!(pending_recv(2, 77), "recv(src=2, tag=77)");
        assert_eq!(stuck_header(3, "threads"), "deadlock: 3 threads stuck");
        assert_eq!(stuck_header(1, "receives"), "deadlock: 1 receives stuck");
    }
}
