//! The timed machine: executes rank programs on the simulated BGP.

use crate::diag;
use crate::instr::{Instr, Program, Tag};
use crate::report::{RunReport, ThreadPhases};
use gpaw_bgp_hw::spec::{CostModel, STENCIL_FLOPS_PER_POINT};
use gpaw_bgp_hw::topology::{Axis, Coord, Dir, LinkDir};
use gpaw_bgp_hw::CartMap;
use gpaw_des::{EventQueue, FifoServer, SimDuration, SimTime, SpanAgg, SpanKind};
use gpaw_netsim::{CollectiveTree, FullNetwork, UnitCellNetwork};
use std::collections::{HashMap, VecDeque};

/// The MPI thread support level of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadMode {
    /// `MPI_THREAD_SINGLE`: no library locking; only thread 0 of each
    /// process may issue communication instructions.
    Single,
    /// `MPI_THREAD_MULTIPLE`: any thread may call the library, but every
    /// call serializes through a per-process lock with a measurable hold
    /// time.
    Multiple,
}

/// How much of the machine is instantiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Every rank, every link. Exact for any topology and any schedule.
    Full,
    /// One node plus mirrored neighbor traffic. Exact for SPMD-symmetric
    /// schedules on torus partitions (the FD workload); `neighbor_hops`
    /// is 1 for a reordered cartesian map.
    UnitCell {
        /// Torus distance to the logical neighbor.
        neighbor_hops: u64,
    },
}

enum Net {
    Full(FullNetwork),
    Cell(UnitCellNetwork),
}

#[derive(Debug)]
enum Ev {
    /// Thread CPU became free: fetch and start the next instruction.
    Fetch { tid: u32 },
    /// A send request (epoch) of a thread completed (buffer reusable).
    SendDone { tid: u32, epoch: u32 },
    /// A message reached its destination process.
    Deliver {
        proc: u32,
        src: u64,
        tag: Tag,
        bytes: u64,
    },
}

struct Thread {
    proc: u32,
    slot: u32,
    /// Incomplete request count per epoch.
    outstanding: HashMap<u32, u32>,
    /// Total requests posted per epoch (drives the wait-completion charge).
    posted_count: HashMap<u32, u32>,
    waiting: Option<u32>,
    /// When the thread parked on its current `WaitEpoch` (valid while
    /// `waiting` is `Some`); anchors the Wait span.
    wait_started: SimTime,
    done: bool,
    finish: SimTime,
    /// CPU time in the stencil kernel (and explicit delays).
    busy_compute: SimDuration,
    /// CPU time in messaging: posting calls, lock waits, completion
    /// processing, intra-node copies.
    busy_comm: SimDuration,
    /// CPU time in synchronization: thread barriers, collectives.
    busy_sync: SimDuration,
    /// Span-level attribution of the whole timeline. Unlike the `busy_*`
    /// aggregates (which count only CPU-occupied time), the spans tile
    /// `[0, finish]` exactly: blocked waits and barrier arrival-to-release
    /// intervals are attributed to `Wait`/`ThreadBarrier`, and MULTIPLE-mode
    /// lock queueing is separated out as `LibLock`.
    spans: SpanAgg,
    flops: f64,
}

impl Thread {
    fn busy(&self) -> SimDuration {
        self.busy_compute + self.busy_comm + self.busy_sync
    }
}

struct Proc {
    rank: usize,
    node_idx: usize,
    /// Payload bytes this process posted with `Isend` (any destination) —
    /// the paper's Fig. 6 counts intra-node virtual-mode messages too.
    sent_payload: u64,
    mpi_lock: FifoServer,
    posted: HashMap<(u64, Tag), VecDeque<(u32, u32)>>,
    unexpected: HashMap<(u64, Tag), VecDeque<u64>>,
    barrier: Vec<(u32, SimTime)>,
}

/// The simulated machine, ready to run one set of programs.
pub struct Machine {
    model: CostModel,
    map: CartMap,
    mode: ThreadMode,
    net: Net,
    tree: CollectiveTree,
    queue: EventQueue<Ev>,
    procs: Vec<Proc>,
    threads: Vec<Thread>,
    programs: Vec<Box<dyn Program>>,
    proc_of_rank: HashMap<usize, u32>,
    node_bus: Vec<FifoServer>,
    ar_arrived: Vec<(u32, SimTime)>,
    ar_bytes: u64,
    finished: usize,
    messages: u64,
    cell_dims: [usize; 3],
}

impl Machine {
    /// The global ranks that will be instantiated (and therefore need
    /// programs) for a map at a given scope, in ascending order.
    pub fn instantiated_ranks(map: &CartMap, scope: Scope) -> Vec<usize> {
        match scope {
            Scope::Full => (0..map.ranks()).collect(),
            Scope::UnitCell { .. } => {
                let origin = Coord([0, 0, 0]);
                (0..map.ranks())
                    .filter(|&r| map.node_of(r) == origin)
                    .collect()
            }
        }
    }

    /// Build a machine. `programs` is indexed `[proc][thread-slot]`,
    /// flattened, with processes in [`Machine::instantiated_ranks`] order
    /// and `threads_per_process` slots each.
    ///
    /// # Panics
    /// Panics if the program count is wrong, or if `UnitCell` scope is
    /// combined with an unreordered map (the symmetry argument needs the
    /// cartesian embedding).
    pub fn new(
        map: CartMap,
        model: CostModel,
        mode: ThreadMode,
        scope: Scope,
        programs: Vec<Box<dyn Program>>,
    ) -> Machine {
        if matches!(scope, Scope::UnitCell { .. }) {
            assert!(
                map.reordered,
                "unit-cell scope requires a reordered cartesian map"
            );
        }
        let ranks = Self::instantiated_ranks(&map, scope);
        let t_per_proc = map.partition.threads_per_process();
        assert_eq!(
            programs.len(),
            ranks.len() * t_per_proc,
            "need one program per (process, thread-slot)"
        );

        let cell_dims = match scope {
            Scope::Full => [1, 1, 1],
            Scope::UnitCell { .. } => map.block,
        };
        let net = match scope {
            Scope::Full => Net::Full(FullNetwork::new(map.partition.node_shape)),
            Scope::UnitCell { neighbor_hops } => Net::Cell(UnitCellNetwork::new(neighbor_hops)),
        };
        let n_nodes = match scope {
            Scope::Full => map.partition.nodes(),
            Scope::UnitCell { .. } => 1,
        };

        let mut proc_of_rank = HashMap::with_capacity(ranks.len());
        let mut procs = Vec::with_capacity(ranks.len());
        let mut threads = Vec::with_capacity(ranks.len() * t_per_proc);
        for (pi, &rank) in ranks.iter().enumerate() {
            proc_of_rank.insert(rank, pi as u32);
            let node_idx = match scope {
                Scope::Full => map.partition.node_shape.index(map.node_of(rank)),
                Scope::UnitCell { .. } => 0,
            };
            procs.push(Proc {
                rank,
                node_idx,
                sent_payload: 0,
                mpi_lock: FifoServer::new(),
                posted: HashMap::new(),
                unexpected: HashMap::new(),
                barrier: Vec::new(),
            });
            for slot in 0..t_per_proc {
                threads.push(Thread {
                    proc: pi as u32,
                    slot: slot as u32,
                    outstanding: HashMap::new(),
                    posted_count: HashMap::new(),
                    waiting: None,
                    wait_started: SimTime::ZERO,
                    done: false,
                    finish: SimTime::ZERO,
                    busy_compute: SimDuration::ZERO,
                    busy_comm: SimDuration::ZERO,
                    busy_sync: SimDuration::ZERO,
                    spans: SpanAgg::new(),
                    flops: 0.0,
                });
            }
        }

        Machine {
            tree: CollectiveTree::new(map.partition.nodes()),
            model,
            map,
            mode,
            net,
            queue: EventQueue::new(),
            procs,
            threads,
            programs,
            proc_of_rank,
            node_bus: vec![FifoServer::new(); n_nodes],
            ar_arrived: Vec::new(),
            ar_bytes: 0,
            finished: 0,
            messages: 0,
            cell_dims,
        }
    }

    /// Run to completion and report.
    ///
    /// # Panics
    /// Panics on deadlock (some thread never reaches `Done`) with a
    /// description of the stuck threads.
    pub fn run(mut self) -> RunReport {
        for tid in 0..self.threads.len() {
            self.queue
                .schedule_at(SimTime::ZERO, Ev::Fetch { tid: tid as u32 });
        }
        while let Some((now, ev)) = self.queue.pop() {
            match ev {
                Ev::Fetch { tid } => self.fetch(tid, now),
                Ev::SendDone { tid, epoch } => self.complete_request(tid, epoch, now),
                Ev::Deliver {
                    proc,
                    src,
                    tag,
                    bytes,
                } => self.deliver(proc, src, tag, bytes, now),
            }
        }
        if self.finished < self.threads.len() {
            let stuck: Vec<String> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.done)
                .map(|(i, t)| {
                    format!(
                        "tid {i} (rank {}, slot {}) {}",
                        self.procs[t.proc as usize].rank,
                        t.slot,
                        self.pending_op(i as u32, t)
                    )
                })
                .collect();
            panic!(
                "{}: {}",
                diag::stuck_header(stuck.len(), "threads"),
                stuck.join("; ")
            );
        }
        self.report()
    }

    /// What a stuck thread is blocked on, for the deadlock report: the
    /// pending receives of its waited epoch — each named with its peer and
    /// tag in the wording shared with the native fabric's watchdog
    /// ([`diag::pending_recv`]) — or the thread barrier / allreduce it
    /// arrived at and never left.
    fn pending_op(&self, tid: u32, t: &Thread) -> String {
        let p = &self.procs[t.proc as usize];
        if let Some(epoch) = t.waiting {
            let mut pending: Vec<String> = p
                .posted
                .iter()
                .flat_map(|(&(src, tag), q)| {
                    q.iter()
                        .filter(move |&&(wtid, wepoch)| wtid == tid && wepoch == epoch)
                        .map(move |_| diag::pending_recv(src as usize, tag))
                })
                .collect();
            pending.sort();
            if pending.is_empty() {
                // Unmatched sends complete on their own schedule, so an
                // epoch stuck without pending receives means the matching
                // traffic never progressed (e.g. the peer deadlocked).
                format!("waiting on epoch {epoch} (no pending receives)")
            } else {
                format!("waiting on {}", pending.join(" + "))
            }
        } else if p.barrier.iter().any(|&(b, _)| b == tid) {
            format!(
                "in thread barrier ({} of {} arrived)",
                p.barrier.len(),
                self.map.partition.threads_per_process()
            )
        } else if self.ar_arrived.iter().any(|&(b, _)| b == tid) {
            format!(
                "in allreduce ({} of {} processes arrived)",
                self.ar_arrived.len(),
                self.procs.len()
            )
        } else {
            "blocked outside any instruction (program never completed)".to_string()
        }
    }

    fn report(&self) -> RunReport {
        let makespan = self
            .threads
            .iter()
            .map(|t| t.finish)
            .max()
            .unwrap_or(SimTime::ZERO);
        let flops: f64 = self.threads.iter().map(|t| t.flops).sum();
        let busy = self
            .threads
            .iter()
            .fold(SimDuration::ZERO, |acc, t| acc + t.busy());
        let busy_compute = self
            .threads
            .iter()
            .fold(SimDuration::ZERO, |acc, t| acc + t.busy_compute);
        let busy_comm = self
            .threads
            .iter()
            .fold(SimDuration::ZERO, |acc, t| acc + t.busy_comm);
        let busy_sync = self
            .threads
            .iter()
            .fold(SimDuration::ZERO, |acc, t| acc + t.busy_sync);
        let net = match &self.net {
            Net::Full(n) => n.report(makespan),
            Net::Cell(c) => c.report(makespan),
        };
        let mut phases = SpanAgg::new();
        let mut thread_phases = Vec::with_capacity(self.threads.len());
        for t in &self.threads {
            phases.merge(&t.spans);
            thread_phases.push(ThreadPhases {
                rank: self.procs[t.proc as usize].rank,
                slot: t.slot as usize,
                finish: t.finish.since(SimTime::ZERO),
                spans: t.spans.clone(),
            });
        }
        // All posted payload, grouped by node (the Fig. 6 metric).
        let mut per_node: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for p in &self.procs {
            *per_node.entry(p.node_idx).or_insert(0) += p.sent_payload;
        }
        let bytes_per_node = per_node.values().copied().max().unwrap_or(0);
        RunReport {
            makespan: makespan.since(SimTime::ZERO),
            events: self.queue.events_processed(),
            messages: self.messages,
            bytes_per_node,
            network_bytes_per_node: net.bytes_per_node_max,
            total_network_bytes: net.bytes_total,
            busy,
            busy_compute,
            busy_comm,
            busy_sync,
            flops,
            threads: self.threads.len(),
            utilization: self.model.utilization(
                flops,
                self.threads.len(),
                makespan.since(SimTime::ZERO),
            ),
            max_link_utilization: net.max_link_utilization,
            core_peak_flops: self.model.node.core_peak_flops(),
            paper_ref_flops: self.model.ref_flops_paper,
            phases,
            thread_phases,
            net,
        }
    }

    // ---- instruction execution ----------------------------------------

    fn fetch(&mut self, tid: u32, now: SimTime) {
        let instr = self.programs[tid as usize].next();
        let ti = tid as usize;
        match instr {
            Instr::Isend {
                dst,
                bytes,
                tag,
                epoch,
            } => {
                self.assert_comm_allowed(ti);
                let cpu_done = self.charge_call(ti, now, self.model.o_send, SpanKind::Post);
                *self.threads[ti].outstanding.entry(epoch).or_insert(0) += 1;
                *self.threads[ti].posted_count.entry(epoch).or_insert(0) += 1;
                self.messages += 1;
                self.procs[self.threads[ti].proc as usize].sent_payload += bytes;
                let src_rank = self.procs[self.threads[ti].proc as usize].rank;
                let routed = self.route(src_rank, dst, bytes, cpu_done, ti);
                self.queue
                    .schedule_at(routed.injection_done, Ev::SendDone { tid, epoch });
                self.queue.schedule_at(
                    routed.deliver_at,
                    Ev::Deliver {
                        proc: routed.dst_proc,
                        src: routed.perceived_src,
                        tag,
                        bytes,
                    },
                );
                self.queue.schedule_at(routed.cpu_free, Ev::Fetch { tid });
            }
            Instr::Irecv {
                src,
                bytes,
                tag,
                epoch,
            } => {
                self.assert_comm_allowed(ti);
                let cpu_done = self.charge_call(ti, now, self.model.o_recv, SpanKind::Post);
                let pi = self.threads[ti].proc as usize;
                let key = (src as u64, tag);
                let matched = self.procs[pi]
                    .unexpected
                    .get_mut(&key)
                    .and_then(VecDeque::pop_front);
                if let Some(arrived_bytes) = matched {
                    debug_assert_eq!(arrived_bytes, bytes, "message size mismatch");
                    // Completed immediately; still counts toward the epoch's
                    // wait-time charge.
                    *self.threads[ti].posted_count.entry(epoch).or_insert(0) += 1;
                } else {
                    self.procs[pi]
                        .posted
                        .entry(key)
                        .or_default()
                        .push_back((tid, epoch));
                    *self.threads[ti].outstanding.entry(epoch).or_insert(0) += 1;
                    *self.threads[ti].posted_count.entry(epoch).or_insert(0) += 1;
                }
                self.queue.schedule_at(cpu_done, Ev::Fetch { tid });
            }
            Instr::WaitEpoch { epoch } => {
                let t = &mut self.threads[ti];
                let open = t.outstanding.get(&epoch).copied().unwrap_or(0);
                if open == 0 {
                    t.outstanding.remove(&epoch);
                    let k = t.posted_count.remove(&epoch).unwrap_or(0) as u64;
                    let charge = self.model.o_wait * k;
                    t.busy_comm += charge;
                    t.spans.add(SpanKind::Wait, charge);
                    self.queue.schedule_at(now + charge, Ev::Fetch { tid });
                } else {
                    t.waiting = Some(epoch);
                    t.wait_started = now;
                }
            }
            Instr::Compute {
                points,
                rows,
                grids,
            } => {
                let d = self.model.compute_time(points, rows, grids);
                let t = &mut self.threads[ti];
                t.busy_compute += d;
                t.spans.add(SpanKind::Compute, d);
                t.flops += points as f64 * STENCIL_FLOPS_PER_POINT;
                self.queue.schedule_at(now + d, Ev::Fetch { tid });
            }
            Instr::Delay { d } => {
                let t = &mut self.threads[ti];
                t.busy_compute += d;
                t.spans.add(SpanKind::Compute, d);
                self.queue.schedule_at(now + d, Ev::Fetch { tid });
            }
            Instr::ThreadBarrier => {
                let pi = self.threads[ti].proc as usize;
                let t_per_proc = self.map.partition.threads_per_process();
                if t_per_proc == 1 {
                    self.queue.schedule_at(now, Ev::Fetch { tid });
                    return;
                }
                self.procs[pi].barrier.push((tid, now));
                if self.procs[pi].barrier.len() == t_per_proc {
                    let latest = self.procs[pi]
                        .barrier
                        .iter()
                        .map(|&(_, t)| t)
                        .max()
                        .expect("barrier is non-empty");
                    let release = latest + self.model.t_barrier;
                    let waiters = std::mem::take(&mut self.procs[pi].barrier);
                    for (wtid, arrived) in waiters {
                        let t = &mut self.threads[wtid as usize];
                        t.busy_sync += self.model.t_barrier;
                        t.spans.add(SpanKind::ThreadBarrier, release.since(arrived));
                        self.queue.schedule_at(release, Ev::Fetch { tid: wtid });
                    }
                }
            }
            Instr::AllReduce { bytes } => {
                assert_eq!(
                    self.threads[ti].slot, 0,
                    "AllReduce must be issued by thread 0 of each process"
                );
                self.ar_arrived.push((tid, now));
                self.ar_bytes = self.ar_bytes.max(bytes);
                if self.ar_arrived.len() == self.procs.len() {
                    let latest = self
                        .ar_arrived
                        .iter()
                        .map(|&(_, t)| t)
                        .max()
                        .expect("non-empty");
                    let cost = self.tree.allreduce(self.ar_bytes, &self.model);
                    let release = latest + cost;
                    let waiters = std::mem::take(&mut self.ar_arrived);
                    self.ar_bytes = 0;
                    for (wtid, arrived) in waiters {
                        let t = &mut self.threads[wtid as usize];
                        t.busy_sync += cost;
                        t.spans.add(SpanKind::Collective, release.since(arrived));
                        self.queue.schedule_at(release, Ev::Fetch { tid: wtid });
                    }
                }
            }
            Instr::Done => {
                let t = &mut self.threads[ti];
                t.done = true;
                t.finish = now;
                self.finished += 1;
            }
        }
    }

    fn assert_comm_allowed(&self, ti: usize) {
        if self.mode == ThreadMode::Single {
            assert_eq!(
                self.threads[ti].slot, 0,
                "MPI_THREAD_SINGLE: only thread 0 may communicate"
            );
        }
    }

    /// CPU time of an MPI call, including MULTIPLE-mode lock serialization.
    /// Returns when the call completes (thread busy until then). The span
    /// attribution separates the time queueing on the library lock
    /// (`LibLock`) from the call itself (`kind`, normally `Post`).
    fn charge_call(
        &mut self,
        ti: usize,
        now: SimTime,
        cost: SimDuration,
        kind: SpanKind,
    ) -> SimTime {
        let done = match self.mode {
            ThreadMode::Single => {
                self.threads[ti].spans.add(kind, cost);
                now + cost
            }
            ThreadMode::Multiple => {
                let pi = self.threads[ti].proc as usize;
                let grant = self.procs[pi]
                    .mpi_lock
                    .acquire(now, cost + self.model.o_lock_multiple);
                let t = &mut self.threads[ti];
                t.spans.add(SpanKind::LibLock, grant.queue_delay(now));
                t.spans.add(kind, grant.done.since(grant.start));
                grant.done
            }
        };
        self.threads[ti].busy_comm += done.since(now);
        done
    }

    // ---- message routing -----------------------------------------------

    fn route(
        &mut self,
        src_rank: usize,
        dst_rank: usize,
        bytes: u64,
        at: SimTime,
        sender_ti: usize,
    ) -> Routed {
        if let Some(&dst_proc) = self.proc_of_rank.get(&dst_rank) {
            let same_node = match &self.net {
                Net::Full(_) => self.map.same_node(src_rank, dst_rank),
                // Everything instantiated in cell scope lives on the one
                // cell node.
                Net::Cell(_) => true,
            };
            if same_node {
                return self.route_memcpy(dst_proc, src_rank, bytes, at, sender_ti);
            }
        }
        match &mut self.net {
            Net::Full(net) => {
                let dst_proc = *self
                    .proc_of_rank
                    .get(&dst_rank)
                    .expect("full scope instantiates every rank");
                let d = net.transfer(
                    at,
                    self.map.node_of(src_rank),
                    self.map.node_of(dst_rank),
                    bytes,
                    &self.model,
                );
                Routed {
                    cpu_free: at,
                    injection_done: d.injection_done,
                    deliver_at: d.deliver_at,
                    dst_proc,
                    perceived_src: src_rank as u64,
                }
            }
            Net::Cell(net) => {
                let shape = self.map.proc_shape();
                let sc = shape.coord(src_rank);
                let dc = shape.coord(dst_rank);
                // Proc-level displacement: identifies the perceived source.
                let delta = shape.displacement(sc, dc);
                // Node-level displacement: identifies the physical link.
                let ndelta = self
                    .map
                    .partition
                    .node_shape
                    .displacement(self.map.node_of(src_rank), self.map.node_of(dst_rank));
                let (axis, step) = single_axis_step(ndelta)
                    .expect("unit-cell scope only supports nearest-neighbor node traffic");
                let dir = if step > 0 { Dir::Plus } else { Dir::Minus };
                let d = net.transfer(at, LinkDir { axis, dir }, bytes, &self.model);
                // Mirror target: the cell rank at the destination's position
                // within its node block.
                let mirror = Coord([
                    dc.0[0] % self.cell_dims[0],
                    dc.0[1] % self.cell_dims[1],
                    dc.0[2] % self.cell_dims[2],
                ]);
                let mirror_rank = self.map.rank_of(mirror);
                let dst_proc = *self
                    .proc_of_rank
                    .get(&mirror_rank)
                    .expect("mirror target is in the cell by construction");
                // Perceived source: the rank the mirror target would really
                // have received this message from.
                let psrc = Coord([
                    wrap_sub(mirror.0[0], delta[0], shape.dims[0]),
                    wrap_sub(mirror.0[1], delta[1], shape.dims[1]),
                    wrap_sub(mirror.0[2], delta[2], shape.dims[2]),
                ]);
                Routed {
                    cpu_free: at,
                    injection_done: d.injection_done,
                    deliver_at: d.deliver_at,
                    dst_proc,
                    perceived_src: self.map.rank_of(psrc) as u64,
                }
            }
        }
    }

    /// Intra-node transfer: the sending core performs the copy through the
    /// node's shared memory bus.
    fn route_memcpy(
        &mut self,
        dst_proc: u32,
        src_rank: usize,
        bytes: u64,
        at: SimTime,
        sender_ti: usize,
    ) -> Routed {
        let pi = self.threads[sender_ti].proc as usize;
        let node = self.procs[pi].node_idx;
        let grant =
            self.node_bus[node].acquire(at + self.model.o_memcpy, self.model.memcpy_time(bytes));
        let t = &mut self.threads[sender_ti];
        t.busy_comm += grant.done.since(at);
        // The copy (including any bus queueing) occupies the posting core;
        // it is part of the send call, so it extends the Post span.
        t.spans.add(SpanKind::Post, grant.done.since(at));
        Routed {
            cpu_free: grant.done,
            injection_done: grant.done,
            deliver_at: grant.done,
            dst_proc,
            perceived_src: src_rank as u64,
        }
    }

    // ---- completion ------------------------------------------------------

    fn complete_request(&mut self, tid: u32, epoch: u32, now: SimTime) {
        let ti = tid as usize;
        let open = self.threads[ti]
            .outstanding
            .get_mut(&epoch)
            .expect("completion for unknown epoch");
        *open -= 1;
        if *open == 0 {
            self.threads[ti].outstanding.remove(&epoch);
            if self.threads[ti].waiting == Some(epoch) {
                let t = &mut self.threads[ti];
                t.waiting = None;
                let k = t.posted_count.remove(&epoch).unwrap_or(0) as u64;
                let charge = self.model.o_wait * k;
                t.busy_comm += charge;
                // The whole parked interval plus the completion charge is
                // MPI-wait time.
                t.spans
                    .add(SpanKind::Wait, (now + charge).since(t.wait_started));
                self.queue.schedule_at(now + charge, Ev::Fetch { tid });
            }
        }
    }

    fn deliver(&mut self, proc: u32, src: u64, tag: Tag, bytes: u64, now: SimTime) {
        let pi = proc as usize;
        let key = (src, tag);
        let matched = self.procs[pi]
            .posted
            .get_mut(&key)
            .and_then(VecDeque::pop_front);
        match matched {
            Some((tid, epoch)) => self.complete_request(tid, epoch, now),
            None => self.procs[pi]
                .unexpected
                .entry(key)
                .or_default()
                .push_back(bytes),
        }
    }
}

struct Routed {
    cpu_free: SimTime,
    injection_done: SimTime,
    deliver_at: SimTime,
    dst_proc: u32,
    perceived_src: u64,
}

/// Decompose a displacement into its single non-zero axis step.
fn single_axis_step(delta: [isize; 3]) -> Option<(Axis, isize)> {
    let mut found = None;
    for axis in Axis::ALL {
        let d = delta[axis.index()];
        if d != 0 {
            if found.is_some() || d.abs() != 1 {
                return None;
            }
            found = Some((axis, d));
        }
    }
    found
}

/// `(a - d) mod n` with signed `d`.
fn wrap_sub(a: usize, d: isize, n: usize) -> usize {
    (a as isize - d).rem_euclid(n as isize) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::VecProgram;
    use gpaw_bgp_hw::{ExecMode, Partition};

    fn model() -> CostModel {
        CostModel::bgp()
    }

    /// Two SMP nodes; slots 1..3 idle.
    fn two_node_map() -> CartMap {
        let p = Partition::new([1, 1, 2], ExecMode::Smp);
        CartMap::new(p, [1, 1, 2]).unwrap()
    }

    fn pad_idle(mut progs: Vec<Vec<Instr>>, threads: usize) -> Vec<Box<dyn Program>> {
        let mut out: Vec<Box<dyn Program>> = Vec::new();
        for p in progs.drain(..) {
            out.push(Box::new(VecProgram::new(p)));
            for _ in 1..threads {
                out.push(Box::new(VecProgram::new(vec![])));
            }
        }
        out
    }

    #[test]
    fn one_message_end_to_end() {
        let m = model();
        let map = two_node_map();
        let progs = pad_idle(
            vec![
                vec![
                    Instr::Isend {
                        dst: 1,
                        bytes: 224,
                        tag: 7,
                        epoch: 0,
                    },
                    Instr::WaitEpoch { epoch: 0 },
                ],
                vec![
                    Instr::Irecv {
                        src: 0,
                        bytes: 224,
                        tag: 7,
                        epoch: 0,
                    },
                    Instr::WaitEpoch { epoch: 0 },
                ],
            ],
            4,
        );
        let r = Machine::new(map, m.clone(), ThreadMode::Single, Scope::Full, progs).run();
        // Receiver finishes at o_send + link + hop + o_wait (recv posted at
        // t=0 ⇒ o_recv happens concurrently with the send).
        let expect = m.o_send + m.link_time(224) + m.hop_latency + m.o_wait;
        assert_eq!(r.makespan, expect);
        assert_eq!(r.messages, 1);
        assert_eq!(r.bytes_per_node, 224);
    }

    #[test]
    fn unexpected_message_is_buffered() {
        let m = model();
        let map = two_node_map();
        // Receiver delays long enough that the message arrives first.
        let progs = pad_idle(
            vec![
                vec![
                    Instr::Isend {
                        dst: 1,
                        bytes: 100,
                        tag: 1,
                        epoch: 0,
                    },
                    Instr::WaitEpoch { epoch: 0 },
                ],
                vec![
                    Instr::Delay {
                        d: SimDuration::from_ms(1),
                    },
                    Instr::Irecv {
                        src: 0,
                        bytes: 100,
                        tag: 1,
                        epoch: 0,
                    },
                    Instr::WaitEpoch { epoch: 0 },
                ],
            ],
            4,
        );
        let r = Machine::new(map, m.clone(), ThreadMode::Single, Scope::Full, progs).run();
        // Makespan dominated by the receiver's delay, not the network.
        let floor = SimDuration::from_ms(1) + m.o_recv + m.o_wait;
        assert_eq!(r.makespan, floor);
    }

    #[test]
    fn wait_with_nothing_outstanding_is_instant() {
        let m = model();
        let map = two_node_map();
        let progs = pad_idle(vec![vec![Instr::WaitEpoch { epoch: 3 }], vec![]], 4);
        let r = Machine::new(map, m, ThreadMode::Single, Scope::Full, progs).run();
        assert_eq!(r.makespan, SimDuration::ZERO);
    }

    #[test]
    fn simultaneous_exchange_beats_serialized() {
        // The §V optimization: posting all three dimensions at once
        // overlaps the six directions on six independent links.
        let m = model();
        let p = Partition::new([2, 2, 2], ExecMode::Smp);
        let map = CartMap::new(p, [2, 2, 2]).unwrap();
        let bytes = 50_000u64;

        let build = |serialized: bool| -> Vec<Box<dyn Program>> {
            let mut progs: Vec<Vec<Instr>> = Vec::new();
            for r in 0..8usize {
                let mut is: Vec<Instr> = Vec::new();
                for (e, axis) in Axis::ALL.into_iter().enumerate() {
                    let e = if serialized { e as u32 } else { 0 };
                    for dir in Dir::ALL {
                        let nb = map.neighbor_rank(r, axis, dir);
                        let tag_s =
                            (axis.index() * 2 + if dir == Dir::Plus { 1 } else { 0 }) as u64;
                        // The matching receive: our neighbor's send toward
                        // us travels the opposite direction.
                        let tag_r =
                            (axis.index() * 2 + if dir == Dir::Plus { 0 } else { 1 }) as u64;
                        is.push(Instr::Irecv {
                            src: nb,
                            bytes,
                            tag: tag_r,
                            epoch: e,
                        });
                        is.push(Instr::Isend {
                            dst: nb,
                            bytes,
                            tag: tag_s,
                            epoch: e,
                        });
                    }
                    if serialized {
                        is.push(Instr::WaitEpoch { epoch: e });
                    }
                }
                if !serialized {
                    is.push(Instr::WaitEpoch { epoch: 0 });
                }
                progs.push(is);
            }
            pad_idle(progs, 4)
        };

        let t_serial = Machine::new(
            map.clone(),
            m.clone(),
            ThreadMode::Single,
            Scope::Full,
            build(true),
        )
        .run()
        .makespan;
        let par_progs = build(false);
        let t_parallel = Machine::new(map.clone(), m, ThreadMode::Single, Scope::Full, par_progs)
            .run()
            .makespan;
        assert!(
            t_parallel.as_secs_f64() < 0.55 * t_serial.as_secs_f64(),
            "parallel {t_parallel} vs serial {t_serial}"
        );
    }

    #[test]
    fn thread_barrier_synchronizes() {
        let m = model();
        let p = Partition::new([1, 1, 1], ExecMode::Smp);
        let map = CartMap::new(p, [1, 1, 1]).unwrap();
        let mk = |d_ms: u64| {
            vec![
                Instr::Delay {
                    d: SimDuration::from_ms(d_ms),
                },
                Instr::ThreadBarrier,
            ]
        };
        let progs: Vec<Box<dyn Program>> = vec![
            Box::new(VecProgram::new(mk(1))),
            Box::new(VecProgram::new(mk(5))),
            Box::new(VecProgram::new(mk(2))),
            Box::new(VecProgram::new(mk(3))),
        ];
        let r = Machine::new(map, m.clone(), ThreadMode::Single, Scope::Full, progs).run();
        assert_eq!(r.makespan, SimDuration::from_ms(5) + m.t_barrier);
    }

    #[test]
    fn multiple_mode_serializes_library_calls() {
        let m = model();
        let p = Partition::new([1, 1, 2], ExecMode::Smp);
        let map = CartMap::new(p, [1, 1, 2]).unwrap();
        // All four threads of node 0 send to ranks... in Multiple mode the
        // per-process lock serializes the four posts.
        let n_sends = 8u64;
        let build = || {
            let mut progs: Vec<Box<dyn Program>> = Vec::new();
            for proc in 0..2usize {
                for slot in 0..4usize {
                    let mut is = Vec::new();
                    if proc == 0 {
                        for k in 0..n_sends {
                            is.push(Instr::Isend {
                                dst: 1,
                                bytes: 1,
                                tag: (slot as u64) << 32 | k,
                                epoch: 0,
                            });
                        }
                        is.push(Instr::WaitEpoch { epoch: 0 });
                    } else if slot == 0 {
                        for s in 0..4u64 {
                            for k in 0..n_sends {
                                is.push(Instr::Irecv {
                                    src: 0,
                                    bytes: 1,
                                    tag: s << 32 | k,
                                    epoch: 0,
                                });
                            }
                        }
                        is.push(Instr::WaitEpoch { epoch: 0 });
                    }
                    progs.push(Box::new(VecProgram::new(is)));
                }
            }
            progs
        };
        let multi = Machine::new(
            map.clone(),
            m.clone(),
            ThreadMode::Multiple,
            Scope::Full,
            build(),
        )
        .run();
        // Lower bound: 4 threads × 8 calls serialized through the lock.
        let lock_floor = (m.o_send + m.o_lock_multiple) * (4 * n_sends);
        assert!(
            multi.makespan >= lock_floor,
            "multiple-mode lock must serialize: {} < {}",
            multi.makespan,
            lock_floor
        );
    }

    #[test]
    fn intra_node_messages_use_the_memory_bus() {
        let m = model();
        // One node, virtual mode: 4 single-thread ranks exchanging on-node.
        let p = Partition::new([1, 1, 1], ExecMode::Virtual);
        let map = CartMap::new(p, [1, 1, 4]).unwrap();
        let bytes = 1 << 20;
        let mut progs: Vec<Box<dyn Program>> = Vec::new();
        for r in 0..4usize {
            let dst = (r + 1) % 4;
            let src = (r + 3) % 4;
            progs.push(Box::new(VecProgram::new(vec![
                Instr::Irecv {
                    src,
                    bytes,
                    tag: 0,
                    epoch: 0,
                },
                Instr::Isend {
                    dst,
                    bytes,
                    tag: 0,
                    epoch: 0,
                },
                Instr::WaitEpoch { epoch: 0 },
            ])));
        }
        let r = Machine::new(map, m.clone(), ThreadMode::Single, Scope::Full, progs).run();
        // No torus traffic at all — but the Fig. 6 metric still counts the
        // four intra-node messages.
        assert_eq!(r.network_bytes_per_node, 0);
        assert_eq!(r.bytes_per_node, 4 * bytes);
        // Four 1 MB copies serialized on one 6.8 GB/s bus ≳ 0.6 ms.
        let copy = m.memcpy_time(bytes) * 4;
        assert!(r.makespan >= copy);
    }

    #[test]
    fn allreduce_joins_all_processes() {
        let m = model();
        let map = two_node_map();
        let progs = pad_idle(
            vec![
                vec![
                    Instr::Delay {
                        d: SimDuration::from_ms(2),
                    },
                    Instr::AllReduce { bytes: 8 },
                ],
                vec![Instr::AllReduce { bytes: 8 }],
            ],
            4,
        );
        let r = Machine::new(map, m.clone(), ThreadMode::Single, Scope::Full, progs).run();
        let expect = SimDuration::from_ms(2) + m.allreduce_time(8, 2);
        assert_eq!(r.makespan, expect);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn unmatched_wait_deadlocks_loudly() {
        let m = model();
        let map = two_node_map();
        let progs = pad_idle(
            vec![
                vec![
                    Instr::Irecv {
                        src: 1,
                        bytes: 8,
                        tag: 9,
                        epoch: 0,
                    },
                    Instr::WaitEpoch { epoch: 0 },
                ],
                vec![],
            ],
            4,
        );
        Machine::new(map, m, ThreadMode::Single, Scope::Full, progs).run();
    }

    #[test]
    fn deadlock_report_names_the_pending_receive_and_peer() {
        let m = model();
        let map = two_node_map();
        let progs = pad_idle(
            vec![
                vec![
                    Instr::Irecv {
                        src: 1,
                        bytes: 8,
                        tag: 9,
                        epoch: 0,
                    },
                    Instr::WaitEpoch { epoch: 0 },
                ],
                vec![],
            ],
            4,
        );
        let machine = Machine::new(map, m, ThreadMode::Single, Scope::Full, progs);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| machine.run()))
            .expect_err("an unmatched receive must deadlock");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic carries a message")
            .clone();
        // The shared `diag` wording: the same phrases the native fabric's
        // watchdog uses, so one grep covers both planes.
        assert!(msg.contains("deadlock: 1 threads stuck"), "{msg}");
        assert!(msg.contains("rank 0"), "{msg}");
        assert!(msg.contains("waiting on recv(src=1, tag=9)"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "SINGLE")]
    fn single_mode_rejects_worker_comm() {
        let m = model();
        let p = Partition::new([1, 1, 1], ExecMode::Smp);
        let map = CartMap::new(p, [1, 1, 1]).unwrap();
        let progs: Vec<Box<dyn Program>> = vec![
            Box::new(VecProgram::new(vec![])),
            Box::new(VecProgram::new(vec![Instr::Isend {
                dst: 0,
                bytes: 1,
                tag: 0,
                epoch: 0,
            }])),
            Box::new(VecProgram::new(vec![])),
            Box::new(VecProgram::new(vec![])),
        ];
        Machine::new(map, m, ThreadMode::Single, Scope::Full, progs).run();
    }

    /// The unit-cell scope must time a symmetric neighbor exchange exactly
    /// like the full machine.
    #[test]
    fn unit_cell_matches_full_machine_on_symmetric_exchange() {
        let m = model();
        let p = Partition::new([8, 8, 8], ExecMode::Smp); // 512-node torus
        let map = CartMap::new(p, [8, 8, 8]).unwrap();
        let bytes = 30_000u64;

        let prog_for = |map: &CartMap, r: usize| -> Vec<Instr> {
            let mut is = Vec::new();
            for axis in Axis::ALL {
                for dir in Dir::ALL {
                    let nb = map.neighbor_rank(r, axis, dir);
                    let tag_s = (axis.index() * 2 + if dir == Dir::Plus { 1 } else { 0 }) as u64;
                    let tag_r = (axis.index() * 2 + if dir == Dir::Plus { 0 } else { 1 }) as u64;
                    is.push(Instr::Irecv {
                        src: nb,
                        bytes,
                        tag: tag_r,
                        epoch: 0,
                    });
                    is.push(Instr::Isend {
                        dst: nb,
                        bytes,
                        tag: tag_s,
                        epoch: 0,
                    });
                }
            }
            is.push(Instr::WaitEpoch { epoch: 0 });
            is.push(Instr::Compute {
                points: 100_000,
                rows: 1000,
                grids: 1,
            });
            is
        };

        let full_progs = pad_idle((0..map.ranks()).map(|r| prog_for(&map, r)).collect(), 4);
        let full = Machine::new(
            map.clone(),
            m.clone(),
            ThreadMode::Single,
            Scope::Full,
            full_progs,
        )
        .run();

        let cell_ranks = Machine::instantiated_ranks(&map, Scope::UnitCell { neighbor_hops: 1 });
        assert_eq!(cell_ranks, vec![0]);
        let cell_progs = pad_idle(vec![prog_for(&map, 0)], 4);
        let cell = Machine::new(
            map,
            m,
            ThreadMode::Single,
            Scope::UnitCell { neighbor_hops: 1 },
            cell_progs,
        )
        .run();

        assert_eq!(cell.makespan, full.makespan, "scopes must agree");
        assert_eq!(cell.bytes_per_node, full.bytes_per_node);
        assert!(cell.events < full.events / 100, "cell must be far cheaper");
    }

    /// Same equivalence in virtual mode, where the cell holds four ranks
    /// and some neighbors are intra-node.
    #[test]
    fn unit_cell_matches_full_machine_virtual_mode() {
        let m = model();
        let p = Partition::new([8, 8, 8], ExecMode::Virtual);
        let map = CartMap::best(p, [192, 192, 192]);
        let bytes = 10_000u64;

        let prog_for = |map: &CartMap, r: usize| -> Vec<Instr> {
            let mut is = Vec::new();
            for axis in Axis::ALL {
                for dir in Dir::ALL {
                    let nb = map.neighbor_rank(r, axis, dir);
                    let tag_s = (axis.index() * 2 + if dir == Dir::Plus { 1 } else { 0 }) as u64;
                    let tag_r = (axis.index() * 2 + if dir == Dir::Plus { 0 } else { 1 }) as u64;
                    is.push(Instr::Irecv {
                        src: nb,
                        bytes,
                        tag: tag_r,
                        epoch: 0,
                    });
                    is.push(Instr::Isend {
                        dst: nb,
                        bytes,
                        tag: tag_s,
                        epoch: 0,
                    });
                }
            }
            is.push(Instr::WaitEpoch { epoch: 0 });
            is
        };

        let full_progs: Vec<Box<dyn Program>> = (0..map.ranks())
            .map(|r| Box::new(VecProgram::new(prog_for(&map, r))) as Box<dyn Program>)
            .collect();
        let full = Machine::new(
            map.clone(),
            m.clone(),
            ThreadMode::Single,
            Scope::Full,
            full_progs,
        )
        .run();

        let cell_ranks = Machine::instantiated_ranks(&map, Scope::UnitCell { neighbor_hops: 1 });
        assert_eq!(cell_ranks.len(), 4);
        let cell_progs: Vec<Box<dyn Program>> = cell_ranks
            .iter()
            .map(|&r| Box::new(VecProgram::new(prog_for(&map, r))) as Box<dyn Program>)
            .collect();
        let cell = Machine::new(
            map,
            m,
            ThreadMode::Single,
            Scope::UnitCell { neighbor_hops: 1 },
            cell_progs,
        )
        .run();

        assert_eq!(cell.makespan, full.makespan);
        // Full reports the max per node; the cell reports its own node.
        assert_eq!(cell.bytes_per_node, full.bytes_per_node);
    }

    /// Conservation: every picosecond of a thread's life is attributed to
    /// exactly one span kind, so the per-thread span totals must equal the
    /// thread's finish time *exactly* (integer picoseconds, no tolerance).
    /// Exercises sends, receives, blocked and instant waits, compute,
    /// thread barriers, collectives, and the MULTIPLE-mode library lock.
    #[test]
    fn spans_tile_each_threads_lifetime_exactly() {
        let m = model();
        let p = Partition::new([1, 1, 2], ExecMode::Smp);
        let map = CartMap::new(p, [1, 1, 2]).unwrap();
        let mut progs: Vec<Box<dyn Program>> = Vec::new();
        for rank in 0..2usize {
            let peer = 1 - rank;
            for slot in 0..4usize {
                // Identical compute: all four threads hit the library lock
                // at the same instant, so MULTIPLE-mode queueing shows up.
                let mut is = vec![Instr::Compute {
                    points: 10_000,
                    rows: 100,
                    grids: 1,
                }];
                // Every thread communicates: MULTIPLE mode contends on the
                // per-process lock.
                is.push(Instr::Irecv {
                    src: peer,
                    bytes: 4096,
                    tag: slot as u64,
                    epoch: 0,
                });
                is.push(Instr::Isend {
                    dst: peer,
                    bytes: 4096,
                    tag: slot as u64,
                    epoch: 0,
                });
                is.push(Instr::WaitEpoch { epoch: 0 });
                is.push(Instr::WaitEpoch { epoch: 1 }); // instant: nothing open
                is.push(Instr::ThreadBarrier);
                if slot == 0 {
                    is.push(Instr::AllReduce { bytes: 64 });
                }
                progs.push(Box::new(VecProgram::new(is)));
            }
        }
        let r = Machine::new(map, m, ThreadMode::Multiple, Scope::Full, progs).run();
        assert_eq!(r.thread_phases.len(), 8);
        let mut merged = gpaw_des::SpanAgg::new();
        for tp in &r.thread_phases {
            assert_eq!(
                tp.spans.total(),
                tp.finish,
                "rank {} slot {}: spans must tile [0, finish]",
                tp.rank,
                tp.slot
            );
            merged.merge(&tp.spans);
        }
        // The machine-level aggregate is exactly the merge of the threads.
        for kind in gpaw_des::SpanKind::ALL {
            assert_eq!(r.phases.get(kind), merged.get(kind));
        }
        // The interesting kinds all appear.
        use gpaw_des::SpanKind::*;
        for kind in [Compute, Post, Wait, LibLock, ThreadBarrier, Collective] {
            assert!(r.phases.get(kind) > SimDuration::ZERO, "{kind:?} missing");
        }
    }
}
