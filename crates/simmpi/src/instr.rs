//! The instruction set rank programs are written in.
//!
//! A *program* is attached to one hardware thread of one MPI process. The
//! machine asks it for the next instruction whenever the thread's CPU is
//! free; blocking instructions (`WaitEpoch`, `ThreadBarrier`, `AllReduce`)
//! park the thread until their condition is met.
//!
//! Requests are grouped by **epoch**: `Isend`/`Irecv` carry the epoch they
//! belong to, and `WaitEpoch { epoch }` completes when every request of
//! that epoch posted *by this thread* has completed. The double-buffering
//! schedules of the paper map naturally onto epochs: batch *i + 1* is
//! posted under epoch *i + 1* before the thread waits on epoch *i*.

use gpaw_des::SimDuration;

/// Message tag. Matching is on `(source rank, tag)`, exactly as in MPI.
pub type Tag = u64;

/// One instruction of a rank program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Post a non-blocking send of `bytes` to global rank `dst`.
    Isend {
        /// Destination global rank.
        dst: usize,
        /// Payload bytes.
        bytes: u64,
        /// Match tag.
        tag: Tag,
        /// Request group this send belongs to.
        epoch: u32,
    },
    /// Post a non-blocking receive of `bytes` from global rank `src`.
    Irecv {
        /// Source global rank.
        src: usize,
        /// Payload bytes (must equal the sender's).
        bytes: u64,
        /// Match tag.
        tag: Tag,
        /// Request group this receive belongs to.
        epoch: u32,
    },
    /// Block until every request this thread posted under `epoch` is done.
    WaitEpoch {
        /// Epoch to complete.
        epoch: u32,
    },
    /// Run the stencil kernel: `points` interior points in `rows` pencils
    /// across `grids` grids (the cost model turns this into time).
    Compute {
        /// Interior points updated.
        points: u64,
        /// Contiguous pencils traversed.
        rows: u64,
        /// Grids touched.
        grids: u64,
    },
    /// Occupy the CPU for a fixed duration (pack/unpack, setup…).
    Delay {
        /// Busy time.
        d: SimDuration,
    },
    /// Synchronize the threads of this process (pthread-style barrier).
    ThreadBarrier,
    /// Global allreduce of `bytes` over all processes (thread 0 only).
    AllReduce {
        /// Payload bytes reduced.
        bytes: u64,
    },
    /// The program is finished.
    Done,
}

/// A supplier of instructions for one thread.
pub trait Program {
    /// Produce the next instruction. Not called again after [`Instr::Done`].
    fn next(&mut self) -> Instr;
}

/// A canned program: replays a vector of instructions, then `Done`.
/// Convenient for tests and micro-experiments.
#[derive(Debug, Clone)]
pub struct VecProgram {
    instrs: std::vec::IntoIter<Instr>,
}

impl VecProgram {
    /// Wrap an instruction list.
    pub fn new(instrs: Vec<Instr>) -> VecProgram {
        VecProgram {
            instrs: instrs.into_iter(),
        }
    }
}

impl Program for VecProgram {
    fn next(&mut self) -> Instr {
        self.instrs.next().unwrap_or(Instr::Done)
    }
}

impl<F> Program for F
where
    F: FnMut() -> Instr,
{
    fn next(&mut self) -> Instr {
        self()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_program_replays_then_done() {
        let mut p = VecProgram::new(vec![Instr::ThreadBarrier, Instr::Done]);
        assert_eq!(p.next(), Instr::ThreadBarrier);
        assert_eq!(p.next(), Instr::Done);
        assert_eq!(p.next(), Instr::Done);
    }

    #[test]
    fn closures_are_programs() {
        let mut n = 0;
        let mut p = move || {
            n += 1;
            if n > 2 {
                Instr::Done
            } else {
                Instr::Delay {
                    d: SimDuration::from_ns(1),
                }
            }
        };
        assert!(matches!(Program::next(&mut p), Instr::Delay { .. }));
        assert!(matches!(Program::next(&mut p), Instr::Delay { .. }));
        assert_eq!(Program::next(&mut p), Instr::Done);
    }
}
