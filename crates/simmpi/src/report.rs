//! The outcome of a timed run.

use gpaw_des::SimDuration;

/// Aggregate results of one [`crate::Machine::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Simulated wall-clock time from start to the last thread's `Done`.
    pub makespan: SimDuration,
    /// Discrete events processed (simulation-size diagnostic).
    pub events: u64,
    /// Messages posted (`Isend` count) across all instantiated threads.
    pub messages: u64,
    /// MPI payload bytes posted per node (any destination, including the
    /// intra-node shared-memory messages of virtual mode): the maximum over
    /// nodes. This is the quantity on the right axis of the paper's Fig. 6.
    pub bytes_per_node: u64,
    /// Torus payload bytes injected per node (intra-node traffic excluded):
    /// maximum over nodes in full scope, the cell's injection in unit-cell
    /// scope.
    pub network_bytes_per_node: u64,
    /// Total network payload bytes (equals `bytes_per_node` in unit-cell
    /// scope).
    pub total_network_bytes: u64,
    /// Summed busy time across threads (compute + messaging + sync).
    pub busy: SimDuration,
    /// Busy time spent in the stencil kernel (and explicit delays).
    pub busy_compute: SimDuration,
    /// Busy time spent in messaging (posting, locks, waits, memcpy).
    pub busy_comm: SimDuration,
    /// Busy time spent synchronizing (barriers, collectives).
    pub busy_sync: SimDuration,
    /// Stencil flops retired (points × 25).
    pub flops: f64,
    /// Instantiated hardware threads.
    pub threads: usize,
    /// Fraction of peak flops achieved over the makespan — the paper's
    /// "CPU utilization" (36 % for Flat original, 70 % for the best hybrid
    /// at 16 384 cores).
    pub utilization: f64,
    /// Utilization of the busiest directed torus link.
    pub max_link_utilization: f64,
}

impl RunReport {
    /// Seconds of simulated time.
    pub fn seconds(&self) -> f64 {
        self.makespan.as_secs_f64()
    }

    /// Fraction of aggregate thread time (threads × makespan) spent in a
    /// category; the remainder is idle (waiting on the network or peers).
    fn frac(&self, d: SimDuration) -> f64 {
        let total = self.makespan.as_secs_f64() * self.threads as f64;
        if total <= 0.0 {
            0.0
        } else {
            d.as_secs_f64() / total
        }
    }

    /// Fraction of thread time computing.
    pub fn compute_fraction(&self) -> f64 {
        self.frac(self.busy_compute)
    }

    /// Fraction of thread time in messaging overhead.
    pub fn comm_fraction(&self) -> f64 {
        self.frac(self.busy_comm)
    }

    /// Fraction of thread time synchronizing.
    pub fn sync_fraction(&self) -> f64 {
        self.frac(self.busy_sync)
    }

    /// Fraction of thread time idle (1 − the other three).
    pub fn idle_fraction(&self) -> f64 {
        (1.0 - self.compute_fraction() - self.comm_fraction() - self.sync_fraction()).max(0.0)
    }

    /// Speedup of this run relative to a baseline run.
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        baseline.seconds() / self.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(secs: f64) -> RunReport {
        RunReport {
            makespan: SimDuration::from_secs_f64(secs),
            events: 0,
            messages: 0,
            bytes_per_node: 0,
            network_bytes_per_node: 0,
            total_network_bytes: 0,
            busy: SimDuration::ZERO,
            busy_compute: SimDuration::ZERO,
            busy_comm: SimDuration::ZERO,
            busy_sync: SimDuration::ZERO,
            flops: 0.0,
            threads: 1,
            utilization: 0.0,
            max_link_utilization: 0.0,
        }
    }

    #[test]
    fn speedup() {
        let base = report(10.0);
        let fast = report(2.5);
        assert!((fast.speedup_vs(&base) - 4.0).abs() < 1e-12);
    }
}
