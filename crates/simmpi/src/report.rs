//! The outcome of a timed run.

use gpaw_des::{SimDuration, SpanAgg, SpanKind};
use gpaw_netsim::NetReport;

/// Per-thread span breakdown: where one hardware thread's simulated time
/// went. Unlike the legacy `busy_*` counters (which only count time the
/// core is actively charged), the spans tile `[0, finish]` exactly — every
/// picosecond of a thread's life is attributed to exactly one
/// [`SpanKind`], so blocked time inside `Wait`/`ThreadBarrier`/`Collective`
/// is visible instead of folded into "idle".
#[derive(Debug, Clone)]
pub struct ThreadPhases {
    /// MPI rank the thread belongs to.
    pub rank: usize,
    /// Thread slot within the rank (0 for the master).
    pub slot: usize,
    /// Simulated time at which this thread executed `Done`.
    pub finish: SimDuration,
    /// Exclusive per-kind time totals; they sum to `finish`.
    pub spans: SpanAgg,
}

/// Aggregate results of one [`crate::Machine::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Simulated wall-clock time from start to the last thread's `Done`.
    pub makespan: SimDuration,
    /// Discrete events processed (simulation-size diagnostic).
    pub events: u64,
    /// Messages posted (`Isend` count) across all instantiated threads.
    pub messages: u64,
    /// MPI payload bytes posted per node (any destination, including the
    /// intra-node shared-memory messages of virtual mode): the maximum over
    /// nodes. This is the quantity on the right axis of the paper's Fig. 6.
    pub bytes_per_node: u64,
    /// Torus payload bytes injected per node (intra-node traffic excluded):
    /// maximum over nodes in full scope, the cell's injection in unit-cell
    /// scope.
    pub network_bytes_per_node: u64,
    /// Total network payload bytes (equals `bytes_per_node` in unit-cell
    /// scope).
    pub total_network_bytes: u64,
    /// Summed busy time across threads (compute + messaging + sync).
    pub busy: SimDuration,
    /// Busy time spent in the stencil kernel (and explicit delays).
    pub busy_compute: SimDuration,
    /// Busy time spent in messaging (posting, locks, waits, memcpy).
    pub busy_comm: SimDuration,
    /// Busy time spent synchronizing (barriers, collectives).
    pub busy_sync: SimDuration,
    /// Stencil flops retired (points × 25).
    pub flops: f64,
    /// Instantiated hardware threads.
    pub threads: usize,
    /// Fraction of peak flops achieved over the makespan — the paper's
    /// "CPU utilization" (36 % for Flat original, 70 % for the best hybrid
    /// at 16 384 cores).
    pub utilization: f64,
    /// Utilization of the busiest directed torus link.
    pub max_link_utilization: f64,
    /// Per-core peak flop rate of the modeled hardware (for span-derived
    /// utilization figures).
    pub core_peak_flops: f64,
    /// Per-core reference flop rate of the paper's utilization accounting
    /// (see `CostModel::ref_flops_paper`).
    pub paper_ref_flops: f64,
    /// Span totals merged across every instantiated thread.
    pub phases: SpanAgg,
    /// Per-thread span breakdowns (one entry per instantiated thread).
    pub thread_phases: Vec<ThreadPhases>,
    /// Structured interconnect statistics over the run's horizon.
    pub net: NetReport,
}

impl RunReport {
    /// Seconds of simulated time.
    pub fn seconds(&self) -> f64 {
        self.makespan.as_secs_f64()
    }

    /// Fraction of aggregate thread time (threads × makespan) spent in a
    /// category; the remainder is idle (waiting on the network or peers).
    fn frac(&self, d: SimDuration) -> f64 {
        let total = self.makespan.as_secs_f64() * self.threads as f64;
        if total <= 0.0 {
            0.0
        } else {
            d.as_secs_f64() / total
        }
    }

    /// Fraction of thread time computing.
    pub fn compute_fraction(&self) -> f64 {
        self.frac(self.busy_compute)
    }

    /// Fraction of thread time in messaging overhead.
    pub fn comm_fraction(&self) -> f64 {
        self.frac(self.busy_comm)
    }

    /// Fraction of thread time synchronizing.
    pub fn sync_fraction(&self) -> f64 {
        self.frac(self.busy_sync)
    }

    /// Fraction of thread time idle (1 − the other three).
    pub fn idle_fraction(&self) -> f64 {
        (1.0 - self.compute_fraction() - self.comm_fraction() - self.sync_fraction()).max(0.0)
    }

    /// Fraction of aggregate thread time (threads × makespan) attributed to
    /// one span kind. Spans account for blocked time too, so summing over
    /// all kinds plus [`Self::idle_fraction_from_spans`] yields 1.
    pub fn span_fraction(&self, kind: SpanKind) -> f64 {
        self.frac(self.phases.get(kind))
    }

    /// Fraction of thread time not inside any span: threads that finished
    /// before the makespan (load imbalance between ranks), plus start-up
    /// skew. Within one thread's `[0, finish]` the spans tile exactly.
    pub fn idle_fraction_from_spans(&self) -> f64 {
        let covered: f64 = SpanKind::ALL
            .iter()
            .map(|&k| self.span_fraction(k))
            .sum::<f64>();
        (1.0 - covered).max(0.0)
    }

    /// CPU utilization derived from the span breakdown: the flop rate
    /// achieved during `Compute` spans, as a fraction of peak, scaled by
    /// the fraction of thread time spent computing. Algebraically equal to
    /// `flops / (core_peak × threads × makespan)`, i.e. to the legacy
    /// flops-over-peak [`Self::utilization`], but decomposed so the report
    /// can show *why* utilization is low (lock, wait, barrier fractions).
    pub fn utilization_from_spans(&self) -> f64 {
        let compute = self.phases.get(SpanKind::Compute).as_secs_f64();
        if compute <= 0.0 || self.core_peak_flops <= 0.0 {
            return 0.0;
        }
        let kernel_eff = (self.flops / compute) / self.core_peak_flops;
        kernel_eff * self.span_fraction(SpanKind::Compute)
    }

    /// Span-derived utilization expressed on the paper's scale: the same
    /// quantity as [`Self::utilization_from_spans`], but measured against
    /// the reference flop rate of the paper's accounting instead of the
    /// model's theoretical peak. This is the metric that reproduces the
    /// paper's §VIII headline "utilization grows from 36 % to 70 %" as an
    /// absolute number (see `CostModel::ref_flops_paper`).
    pub fn utilization_paper_scale(&self) -> f64 {
        if self.paper_ref_flops <= 0.0 {
            return 0.0;
        }
        self.utilization_from_spans() * self.core_peak_flops / self.paper_ref_flops
    }

    /// Speedup of this run relative to a baseline run.
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        baseline.seconds() / self.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(secs: f64) -> RunReport {
        RunReport {
            makespan: SimDuration::from_secs_f64(secs),
            events: 0,
            messages: 0,
            bytes_per_node: 0,
            network_bytes_per_node: 0,
            total_network_bytes: 0,
            busy: SimDuration::ZERO,
            busy_compute: SimDuration::ZERO,
            busy_comm: SimDuration::ZERO,
            busy_sync: SimDuration::ZERO,
            flops: 0.0,
            threads: 1,
            utilization: 0.0,
            max_link_utilization: 0.0,
            core_peak_flops: 0.0,
            paper_ref_flops: 0.0,
            phases: SpanAgg::new(),
            thread_phases: Vec::new(),
            net: NetReport::default(),
        }
    }

    #[test]
    fn speedup() {
        let base = report(10.0);
        let fast = report(2.5);
        assert!((fast.speedup_vs(&base) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn span_fractions_and_utilization() {
        let mut r = report(10.0);
        r.threads = 2;
        r.core_peak_flops = 100.0;
        // One thread computes 10 s at half peak, the other waits 10 s.
        r.phases
            .add(SpanKind::Compute, SimDuration::from_secs_f64(10.0));
        r.phases
            .add(SpanKind::Wait, SimDuration::from_secs_f64(10.0));
        r.flops = 500.0;
        assert!((r.span_fraction(SpanKind::Compute) - 0.5).abs() < 1e-12);
        assert!((r.span_fraction(SpanKind::Wait) - 0.5).abs() < 1e-12);
        assert!(r.idle_fraction_from_spans().abs() < 1e-12);
        // kernel efficiency 0.5 × compute fraction 0.5 = 0.25, which equals
        // flops / (peak × threads × makespan) = 500 / 2000.
        assert!((r.utilization_from_spans() - 0.25).abs() < 1e-12);
        // Against a reference rate of half peak, the same run reads 0.5.
        r.paper_ref_flops = 50.0;
        assert!((r.utilization_paper_scale() - 0.5).abs() < 1e-12);
    }
}
