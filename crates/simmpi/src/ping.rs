//! The Fig. 2 experiment: point-to-point bandwidth between two neighboring
//! nodes as a function of message size.
//!
//! One message is sent from a node to its neighbor; bandwidth is payload
//! size over the one-way completion time (post → receive complete). The
//! saturating curve is *emergent*: software posting overhead + per-hop
//! latency dominate small messages, link serialization (with the
//! 224/256-byte packet protocol efficiency) dominates large ones.

use crate::instr::{Instr, Program, VecProgram};
use crate::machine::{Machine, Scope, ThreadMode};
use gpaw_bgp_hw::spec::CostModel;
use gpaw_bgp_hw::{CartMap, ExecMode, Partition};

/// One point of the bandwidth curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthSample {
    /// Message payload size in bytes.
    pub bytes: u64,
    /// One-way completion time in seconds.
    pub seconds: f64,
    /// Achieved bandwidth in bytes/s.
    pub bandwidth: f64,
}

/// Measure the one-way bandwidth for a single message of `bytes` between
/// two neighboring nodes.
pub fn p2p_bandwidth(model: &CostModel, bytes: u64) -> BandwidthSample {
    let partition = Partition::new([1, 1, 2], ExecMode::Smp);
    let map = CartMap::new(partition, [1, 1, 2]).unwrap();
    let mut programs: Vec<Box<dyn Program>> = Vec::new();
    // Rank 0: sender (plus 3 idle thread slots).
    programs.push(Box::new(VecProgram::new(vec![
        Instr::Isend {
            dst: 1,
            bytes,
            tag: 0,
            epoch: 0,
        },
        Instr::WaitEpoch { epoch: 0 },
    ])));
    for _ in 1..4 {
        programs.push(Box::new(VecProgram::new(vec![])));
    }
    // Rank 1: receiver.
    programs.push(Box::new(VecProgram::new(vec![
        Instr::Irecv {
            src: 0,
            bytes,
            tag: 0,
            epoch: 0,
        },
        Instr::WaitEpoch { epoch: 0 },
    ])));
    for _ in 1..4 {
        programs.push(Box::new(VecProgram::new(vec![])));
    }
    let report = Machine::new(
        map,
        model.clone(),
        ThreadMode::Single,
        Scope::Full,
        programs,
    )
    .run();
    let seconds = report.seconds();
    BandwidthSample {
        bytes,
        seconds,
        bandwidth: bytes as f64 / seconds,
    }
}

/// Sweep message sizes `10^0 .. 10^7` like the paper's Fig. 2 (a few
/// intermediate points per decade).
pub fn bandwidth_sweep(model: &CostModel) -> Vec<BandwidthSample> {
    let mut sizes = Vec::new();
    for exp in 0..=6 {
        let base = 10u64.pow(exp);
        for mult in [1, 2, 5] {
            sizes.push(base * mult);
        }
    }
    sizes.push(10_000_000);
    sizes.into_iter().map(|s| p2p_bandwidth(model, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_saturates_like_fig2() {
        let m = CostModel::bgp();
        let b_small = p2p_bandwidth(&m, 1);
        let b_1k = p2p_bandwidth(&m, 1_000);
        let b_100k = p2p_bandwidth(&m, 100_000);
        let b_10m = p2p_bandwidth(&m, 10_000_000);

        // Asymptote: within a few percent of the protocol-limited
        // 425 × 224/256 ≈ 372 MB/s, reached by 10^5 B.
        let asym = 425e6 * 224.0 / 256.0;
        assert!(
            (b_10m.bandwidth - asym).abs() / asym < 0.02,
            "asymptote {}",
            b_10m.bandwidth
        );
        assert!(
            b_100k.bandwidth > 0.9 * asym,
            "10^5 B should be near saturation: {}",
            b_100k.bandwidth
        );
        // Half the asymptotic bandwidth is reached around 10^3 B
        // ("approximately" in the paper — allow a generous band).
        assert!(
            b_1k.bandwidth > 0.3 * asym && b_1k.bandwidth < 0.7 * asym,
            "10^3 B should sit near half bandwidth: {}",
            b_1k.bandwidth
        );
        // Tiny messages achieve almost nothing.
        assert!(b_small.bandwidth < 0.01 * asym);
    }

    #[test]
    fn bandwidth_monotonically_increases() {
        let m = CostModel::bgp();
        let sweep = bandwidth_sweep(&m);
        for w in sweep.windows(2) {
            assert!(
                w[1].bandwidth >= w[0].bandwidth * 0.999,
                "bandwidth dipped between {} and {} bytes",
                w[0].bytes,
                w[1].bytes
            );
        }
    }
}
