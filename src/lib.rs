//! # gpaw-repro — reproduction of *GPAW optimized for Blue Gene/P using
//! # hybrid programming* (Kristensen, Happe, Vinter — IPDPS 2009)
//!
//! This façade crate re-exports the whole workspace so examples and
//! downstream users can depend on a single crate:
//!
//! * [`des`] — deterministic discrete-event simulation kernel
//! * [`bgp`] — Blue Gene/P hardware description, topology and cost model
//! * [`netsim`] — simulated torus interconnect (links, DMA, collective tree)
//! * [`simmpi`] — MPI-like message layer over the simulated machine
//! * [`grid`] — real-space grids, 13-point FD stencils, decomposition
//! * [`fd`] — the paper's contribution: the four programming approaches,
//!   batching and double buffering, on both execution planes
//! * [`mini`] — miniature GPAW workloads (Poisson, kinetic operator, SCF)
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use gpaw_bgp_hw as bgp;
pub use gpaw_des as des;
pub use gpaw_fd as fd;
pub use gpaw_grid as grid;
pub use gpaw_mini as mini;
pub use gpaw_netsim as netsim;
pub use gpaw_simmpi as simmpi;
