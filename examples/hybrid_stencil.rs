//! All four programming approaches of the paper, run *functionally* (real
//! threads, real messages, real arithmetic) on the same workload, verified
//! bit-identical to the sequential reference — and then timed on the
//! simulated Blue Gene/P at 16 384 cores to show why the paper prefers
//! *Hybrid multiple*.
//!
//! Run with: `cargo run --release --example hybrid_stencil`

use gpaw_repro::bgp::{CartMap, CostModel, Partition};
use gpaw_repro::fd::config::{Approach, FdConfig};
use gpaw_repro::fd::exec::{max_error_vs_reference, run_distributed, sequential_reference};
use gpaw_repro::fd::timed::{run_timed, ScopeSel, TimedJob};
use gpaw_repro::grid::stencil::StencilCoeffs;

fn main() {
    let grid_ext = [20, 20, 20];
    let n_grids = 8;
    let coef = StencilCoeffs::laplacian([0.3; 3]);

    println!("== Functional plane: 2 nodes, every approach vs the sequential reference ==");
    for approach in Approach::GRAPHED {
        let cfg = FdConfig::paper(approach).with_batch(2);
        let partition = Partition::standard(2, approach.exec_mode()).expect("2 nodes");
        let map = CartMap::best(partition, grid_ext);
        let outputs = run_distributed::<f64>(grid_ext, n_grids, 7, &coef, &cfg, &map);
        let reference =
            sequential_reference::<f64>(grid_ext, n_grids, 7, &coef, cfg.bc, cfg.sweeps);
        let err = max_error_vs_reference(&outputs, &map, grid_ext, &reference);
        println!(
            "  {:<20} {} processes x {} threads  -> max error {err:e}",
            approach.label(),
            map.ranks(),
            partition.threads_per_process(),
        );
        assert_eq!(err, 0.0);
    }

    println!("\n== Timed plane: the paper's headline job at 16 384 cores ==");
    let model = CostModel::bgp();
    let mut rows = Vec::new();
    for approach in Approach::GRAPHED {
        let job = TimedJob {
            cores: 16_384,
            grid_ext: [192, 192, 192],
            n_grids: 2816,
            bytes_per_point: 8,
            config: FdConfig::paper(approach).with_batch(32),
        };
        let r = run_timed(&job, &model, ScopeSel::Auto);
        rows.push((approach, r));
    }
    let orig = rows[0].1.seconds();
    for (a, r) in &rows {
        println!(
            "  {:<20} {:>9.3} ms   {:>5.2}x vs Flat original",
            a.label(),
            r.seconds() * 1e3,
            orig / r.seconds()
        );
    }
    println!("\n(The paper's §VIII: hybrid multiple is 94% faster than the original.)");
}
