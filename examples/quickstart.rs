//! Quickstart: apply the 13-point finite-difference Laplacian to a grid,
//! then run the same operation distributed over 8 simulated MPI ranks with
//! the paper's *Flat optimized* schedule and check the answers agree.
//!
//! Run with: `cargo run --release --example quickstart`

use gpaw_repro::bgp::{CartMap, ExecMode, Partition};
use gpaw_repro::fd::config::{Approach, FdConfig};
use gpaw_repro::fd::exec::{max_error_vs_reference, run_distributed, sequential_reference};
use gpaw_repro::grid::grid3::Grid3;
use gpaw_repro::grid::stencil::{apply_sequential, BoundaryCond, StencilCoeffs};

fn main() {
    // --- 1. A single grid and the stencil --------------------------------
    let n = [32, 32, 32];
    let h = [0.25, 0.25, 0.25];
    let coef = StencilCoeffs::laplacian(h);

    // f(x) = sin(2πx/L): the Laplacian must return ≈ −(2π/L)²·f.
    let mut f: Grid3<f64> = Grid3::from_fn(n, 2, |i, _, _| {
        (std::f64::consts::TAU * i as f64 / n[0] as f64).sin()
    });
    let mut lap = Grid3::zeros(n, 2);
    apply_sequential(&coef, &mut f, &mut lap, BoundaryCond::Periodic);

    let k2 = (std::f64::consts::TAU / (n[0] as f64 * h[0])).powi(2);
    let probe = lap.get(5, 0, 0) / f.get(5, 0, 0);
    println!(
        "∇² sin(kx) / sin(kx) = {probe:.6}  (analytic −k² = {:.6})",
        -k2
    );

    // --- 2. The same operator, distributed -------------------------------
    // Two Blue Gene/P nodes in virtual mode = 8 MPI ranks; GPAW picks the
    // surface-minimizing decomposition; every rank gets the same subset of
    // every grid.
    let grid_ext = [24, 24, 24];
    let n_grids = 6;
    let partition = Partition::standard(2, ExecMode::Virtual).expect("2-node partition");
    let map = CartMap::best(partition, grid_ext);
    println!(
        "\nDistributing {n_grids} grids of {}³ over {} ranks ({}), process grid {:?}",
        grid_ext[0],
        map.ranks(),
        partition,
        map.proc_dims
    );

    let cfg = FdConfig::paper(Approach::FlatOptimized).with_batch(3);
    let outputs = run_distributed::<f64>(grid_ext, n_grids, 42, &coef, &cfg, &map);
    let reference = sequential_reference::<f64>(grid_ext, n_grids, 42, &coef, cfg.bc, cfg.sweeps);
    let err = max_error_vs_reference(&outputs, &map, grid_ext, &reference);
    println!("max |distributed − sequential| = {err:e}");
    assert_eq!(err, 0.0, "the distributed engine must be bit-exact");
    println!("OK: the distributed halo exchange reproduces the sequential stencil exactly.");
}
