//! A miniature self-consistent-field run: the full GPAW workload shape
//! (density → Poisson → Hamiltonian over every wave function →
//! orthogonalization) whose inner loops are exactly what the paper
//! optimizes.
//!
//! Run with: `cargo run --release --example scf_toy`

use gpaw_repro::grid::gridset::GridSet;
use gpaw_repro::grid::stencil::BoundaryCond;
use gpaw_repro::mini::kinetic_energies;
use gpaw_repro::mini::ToyScf;

fn main() {
    let n = 12;
    let h = [0.3; 3];
    let states = 4;

    // Band-limited initial wave functions.
    let mut psi: GridSet<f64> = GridSet::from_fn(states, [n, n, n], 2, |g, i, j, k| {
        let f = |x: usize, p: usize| {
            (std::f64::consts::TAU * (p + 1) as f64 * x as f64 / n as f64).sin()
        };
        f(i, g) + 0.5 * f(j, (g + 1) % 4) + 0.25 * f(k, (g + 2) % 4)
    });

    let scf = ToyScf::new(h, BoundaryCond::Periodic);
    println!(
        "Toy SCF: {states} states on a {n}³ grid (mixing {:.4})\n",
        scf.mixing
    );
    println!(
        "{:>4} {:>14} {:>12} {:>12}",
        "iter", "total energy", "poisson res", "ortho err"
    );

    let reports = scf.run(&mut psi, 8);
    for r in &reports {
        println!(
            "{:>4} {:>14.6} {:>12.2e} {:>12.2e}",
            r.iteration, r.total_energy, r.poisson_residual, r.ortho_error
        );
    }

    let first = reports.first().expect("ran iterations").total_energy;
    let last = reports.last().expect("ran iterations").total_energy;
    println!("\nTotal energy: {first:.6} -> {last:.6}");
    assert!(
        last <= first + 1e-9,
        "steepest descent must not raise energy"
    );

    let kin = kinetic_energies(h, BoundaryCond::Periodic, &mut psi);
    println!("Final per-state kinetic energies: {kin:.3?}");
    assert!(kin.iter().all(|&e| e > 0.0));
    println!("OK: energies descend and states stay orthonormal.");
}
