//! Solve the Poisson equation `∇²φ = ρ` for a Gaussian charge blob — the
//! GPAW workload that applies the paper's stencil to the electron density —
//! with both solvers: single-level Richardson and the geometric multigrid
//! real GPAW uses.
//!
//! Run with: `cargo run --release --example poisson`

use gpaw_repro::grid::generator::gaussian_rho;
use gpaw_repro::grid::grid3::Grid3;
use gpaw_repro::grid::stencil::BoundaryCond;
use gpaw_repro::mini::{Multigrid, PoissonSolver};

fn main() {
    let n = [32, 32, 32];
    let h = [0.2, 0.2, 0.2];

    // A Gaussian charge at the box center, neutralized to zero mean so the
    // periodic problem is solvable.
    let blob = gaussian_rho(n, [0.5, 0.5, 0.5], 0.12);
    let mut rho: Grid3<f64> = Grid3::from_fn(n, 2, blob);
    let mean: f64 = rho.iter_interior().map(|(_, v)| v).sum::<f64>() / rho.interior_points() as f64;
    for v in rho.data_mut() {
        *v -= mean;
    }

    let solver = PoissonSolver::new(h, BoundaryCond::Periodic)
        .with_tol(1e-8)
        .with_max_iters(200_000);
    let mut phi = Grid3::zeros(n, 2);
    let stats = solver.solve(&rho, &mut phi);

    println!(
        "Poisson solve on {}³: {} iterations, residual {:.2e} (from {:.2e})",
        n[0], stats.iterations, stats.residual, stats.initial_residual
    );
    assert!(stats.converged(1e-7), "solver failed to converge");

    // The potential must be deepest at the charge center and flatten away
    // from it (sign convention: ∇²φ = ρ with ρ > 0 at center ⇒ φ maximal
    // curvature there).
    let center = phi.get(16, 16, 16);
    let corner = phi.get(0, 0, 0);
    println!("φ(center) = {center:.5}, φ(corner) = {corner:.5}");
    assert!(center < corner, "potential well must sit at the charge");

    // Check the discrete equation holds.
    let mut lap = Grid3::zeros(n, 2);
    solver.laplacian(&mut phi, &mut lap);
    let err = gpaw_repro::grid::norms::max_abs_diff(&lap, &rho);
    println!("max |∇²φ − ρ| = {err:.2e}");
    assert!(err < 1e-6);
    println!("OK: Poisson equation satisfied to solver tolerance.");

    // The same problem with geometric multigrid (what real GPAW runs).
    let mut mg = Multigrid::new(n, h, BoundaryCond::Periodic);
    mg.tol = 1e-8;
    let mut phi_mg = Grid3::zeros(n, 2);
    let mg_stats = mg.solve(&rho, &mut phi_mg);
    println!(
        "\nMultigrid ({} levels): {} V-cycles to residual {:.2e}",
        mg.depth(),
        mg_stats.cycles,
        mg_stats.residual
    );
    assert!(mg_stats.converged(1e-7));
    // Gauge-fix the Richardson potential (periodic solutions are defined
    // up to a constant) and compare.
    let mean: f64 = phi.iter_interior().map(|(_, v)| v).sum::<f64>() / phi.interior_points() as f64;
    for v in phi.data_mut() {
        *v -= mean;
    }
    let gap = gpaw_repro::grid::norms::max_abs_diff(&phi, &phi_mg);
    println!("|φ_richardson − φ_multigrid| = {gap:.2e}");
    assert!(
        gap < 1e-4,
        "both solvers must agree on the discrete solution"
    );
    println!(
        "Multigrid used ~{} fine sweeps vs {} Richardson iterations.",
        mg_stats.cycles * (2 * mg.smooth_sweeps + 1),
        stats.iterations
    );
}
