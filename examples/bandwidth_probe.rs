//! Probe the simulated torus point-to-point bandwidth (the paper's Fig. 2
//! experiment) and print the curve with its two characteristic points.
//!
//! Run with: `cargo run --release --example bandwidth_probe`

use gpaw_repro::bgp::CostModel;
use gpaw_repro::simmpi::ping::{bandwidth_sweep, p2p_bandwidth};

fn main() {
    let model = CostModel::bgp();
    let sweep = bandwidth_sweep(&model);
    let asym = sweep.last().expect("non-empty sweep").bandwidth;

    println!("message bytes -> MB/s (simulated, one message between neighbor nodes)");
    for s in sweep
        .iter()
        .filter(|s| s.bytes.is_power_of_two() || s.bytes % 10 == 0)
    {
        let frac = (s.bandwidth / asym * 30.0).round() as usize;
        println!(
            "{:>9} {:>8.1} |{}",
            s.bytes,
            s.bandwidth / 1e6,
            "=".repeat(frac)
        );
    }

    println!("\nAsymptote ≈ {:.0} MB/s (paper: ~375 MB/s).", asym / 1e6);
    let b1k = p2p_bandwidth(&model, 1000);
    println!(
        "At 10³ B: {:.0} MB/s = {:.0}% of asymptote (paper: ≈ half).",
        b1k.bandwidth / 1e6,
        b1k.bandwidth / asym * 100.0
    );
    let b100k = p2p_bandwidth(&model, 100_000);
    assert!(b100k.bandwidth > 0.95 * asym, "10^5 B must be saturated");
    println!("At 10⁵ B: saturated — exactly why the engine batches grid faces (§V-A).");
}
