//! A scaling study on the simulated Blue Gene/P: sweep core counts and
//! approaches for a user-sized job and print speedups, per-node
//! communication, and the best batch size per point — a miniature of the
//! paper's Figs. 5–7 you can re-parameterize freely.
//!
//! Run with: `cargo run --release --example scaling_sim`

use gpaw_repro::bgp::CostModel;
use gpaw_repro::fd::runner::{FdExperiment, BATCH_CANDIDATES};
use gpaw_repro::fd::timed::ScopeSel;
use gpaw_repro::fd::Approach;

fn main() {
    let model = CostModel::bgp();
    // A mid-sized job: 512 wave functions of 128³.
    let exp = FdExperiment {
        grid_ext: [128, 128, 128],
        n_grids: 512,
        bytes_per_point: 8,
        sweeps: 1,
    };
    let seq = exp.sequential(&model);
    println!(
        "Scaling study: {} grids of {}³ (sequential: {:.2}s simulated)\n",
        exp.n_grids,
        exp.grid_ext[0],
        seq.seconds()
    );
    println!(
        "{:>6} | {:>22} | {:>22} | {:>10}",
        "cores", "Flat optimized", "Hybrid multiple", "comm ratio"
    );
    println!("{:->6}-+-{:->22}-+-{:->22}-+-{:->10}", "", "", "", "");

    for cores in [512usize, 1024, 2048, 4096, 8192] {
        let (bf, flat) = exp.best_batch(
            cores,
            Approach::FlatOptimized,
            &BATCH_CANDIDATES,
            &model,
            ScopeSel::Auto,
        );
        let (bh, hyb) = exp.best_batch(
            cores,
            Approach::HybridMultiple,
            &BATCH_CANDIDATES,
            &model,
            ScopeSel::Auto,
        );
        println!(
            "{:>6} | {:>9.0}x (batch {:>3}) | {:>9.0}x (batch {:>3}) | {:>9.2}x",
            cores,
            flat.speedup_vs(&seq),
            bf,
            hyb.speedup_vs(&seq),
            bh,
            flat.bytes_per_node as f64 / hyb.bytes_per_node as f64,
        );
    }
    println!(
        "\nThe virtual-mode (flat) decomposition moves more data per node; past the\n\
         crossover the hybrid approach wins — the paper's §VII-A observation."
    );
}
