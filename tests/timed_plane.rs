//! Integration tests of the timed plane: scope equivalence at awkward
//! configurations, structural monotonicity, and the paper's quantitative
//! anchors under the calibrated cost model.

use gpaw_repro::bgp::CostModel;
use gpaw_repro::fd::config::{Approach, FdConfig};
use gpaw_repro::fd::runner::FdExperiment;
use gpaw_repro::fd::timed::{run_timed, ScopeSel, TimedJob};
use gpaw_repro::simmpi::ping::p2p_bandwidth;

fn model() -> CostModel {
    CostModel::bgp()
}

fn job(cores: usize, approach: Approach, batch: usize) -> TimedJob {
    TimedJob {
        cores,
        grid_ext: [96, 96, 96],
        n_grids: 24,
        bytes_per_point: 8,
        config: FdConfig::paper(approach).with_batch(batch),
    }
}

/// The unit-cell shortcut must agree exactly with the full machine for
/// every approach on a torus partition.
#[test]
fn cell_equals_full_for_every_approach() {
    let m = model();
    for approach in [
        Approach::FlatOriginal,
        Approach::FlatOptimized,
        Approach::HybridMultiple,
        Approach::HybridMasterOnly,
        Approach::FlatStatic,
    ] {
        let j = job(2048, approach, 4); // 512 nodes: the smallest torus
        let full = run_timed(&j, &m, ScopeSel::Full);
        let cell = run_timed(&j, &m, ScopeSel::Cell);
        assert_eq!(
            full.makespan, cell.makespan,
            "{approach:?}: cell scope must be exact"
        );
        assert_eq!(full.bytes_per_node, cell.bytes_per_node, "{approach:?}");
        assert!(
            cell.events < full.events / 20,
            "{approach:?}: cell must be cheap"
        );
    }
}

/// Runs are deterministic: identical jobs give identical reports.
#[test]
fn timed_runs_are_deterministic() {
    let m = model();
    let j = job(256, Approach::HybridMultiple, 4);
    let a = run_timed(&j, &m, ScopeSel::Full);
    let b = run_timed(&j, &m, ScopeSel::Full);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.bytes_per_node, b.bytes_per_node);
}

/// More grids means proportionally more time (Gustafson direction).
#[test]
fn time_scales_with_grid_count() {
    let m = model();
    let mut j = job(256, Approach::FlatOptimized, 4);
    let t24 = run_timed(&j, &m, ScopeSel::Full).seconds();
    j.n_grids = 48;
    let t48 = run_timed(&j, &m, ScopeSel::Full).seconds();
    let ratio = t48 / t24;
    assert!(
        (1.8..2.2).contains(&ratio),
        "doubling grids should ≈ double time, got {ratio}"
    );
}

/// Larger grids mean more compute per rank and better efficiency.
#[test]
fn efficiency_improves_with_grid_size() {
    let m = model();
    let mut small = job(256, Approach::HybridMultiple, 4);
    small.grid_ext = [64, 64, 64];
    let mut large = small;
    large.grid_ext = [128, 128, 128];
    let u_small = run_timed(&small, &m, ScopeSel::Full).utilization;
    let u_large = run_timed(&large, &m, ScopeSel::Full).utilization;
    assert!(
        u_large > u_small,
        "bigger sub-grids must utilize better: {u_small} vs {u_large}"
    );
}

/// Complex grids (16 B/point) double the communicated bytes.
#[test]
fn complex_points_double_the_traffic() {
    let m = model();
    let mut j = job(256, Approach::FlatOptimized, 4);
    let real = run_timed(&j, &m, ScopeSel::Full);
    j.bytes_per_point = 16;
    let cplx = run_timed(&j, &m, ScopeSel::Full);
    assert_eq!(cplx.bytes_per_node, 2 * real.bytes_per_node);
    assert!(cplx.makespan > real.makespan);
}

/// The §VIII headline under the calibrated model: Hybrid multiple ≈ 1.94×
/// Flat original and ≈ 1.10× Flat optimized at 16 384 cores.
#[test]
fn paper_headline_ratios() {
    let m = model();
    let exp = FdExperiment {
        grid_ext: [192, 192, 192],
        n_grids: 2816,
        bytes_per_point: 8,
        sweeps: 1,
    };
    let candidates = [16usize, 32, 64, 128];
    let (_, orig) = exp.best_batch(16_384, Approach::FlatOriginal, &[1], &m, ScopeSel::Cell);
    let (_, opt) = exp.best_batch(
        16_384,
        Approach::FlatOptimized,
        &candidates,
        &m,
        ScopeSel::Cell,
    );
    let (_, hyb) = exp.best_batch(
        16_384,
        Approach::HybridMultiple,
        &candidates,
        &m,
        ScopeSel::Cell,
    );
    let (_, stat) = exp.best_batch(
        16_384,
        Approach::FlatStatic,
        &candidates,
        &m,
        ScopeSel::Cell,
    );

    let r_orig = orig.seconds() / hyb.seconds();
    assert!(
        (1.75..2.15).contains(&r_orig),
        "Flat original / Hybrid multiple = {r_orig} (paper: 1.94)"
    );
    let r_opt = opt.seconds() / hyb.seconds();
    assert!(
        (1.03..1.20).contains(&r_opt),
        "Flat optimized / Hybrid multiple = {r_opt} (paper: ~1.10)"
    );
    // §VII: the statically-divided flat experiment performs identically to
    // hybrid multiple.
    let r_stat = stat.seconds() / hyb.seconds();
    assert!(
        (0.95..1.05).contains(&r_stat),
        "Flat static / Hybrid multiple = {r_stat} (paper: identical)"
    );
    // Fig. 6's right axis: flat moves clearly more data per node.
    assert!(opt.bytes_per_node > hyb.bytes_per_node * 3 / 2);
}

/// Fig. 2 anchors: ≈372 MB/s asymptote, half of it around 10³ bytes,
/// saturation by 10⁵ bytes.
#[test]
fn paper_bandwidth_anchors() {
    let m = model();
    let asym = p2p_bandwidth(&m, 10_000_000).bandwidth;
    assert!((360e6..385e6).contains(&asym), "asymptote {asym}");
    let b1k = p2p_bandwidth(&m, 1000).bandwidth;
    let frac = b1k / asym;
    assert!(
        (0.40..0.60).contains(&frac),
        "10^3 B at {:.0}% of asymptote (paper: ≈ half)",
        frac * 100.0
    );
    let b100k = p2p_bandwidth(&m, 100_000).bandwidth;
    assert!(b100k > 0.95 * asym, "10^5 B must be saturated");
}

/// Fig. 6's §VII-A claim: from 512 cores on, Hybrid multiple beats Flat
/// optimized on the Gustafson workload, and the gap grows with scale.
#[test]
fn gustafson_crossover_at_512_cores() {
    let m = model();
    let gap = |cores: usize| {
        let exp = FdExperiment {
            grid_ext: [192, 192, 192],
            n_grids: cores,
            bytes_per_point: 8,
            sweeps: 1,
        };
        let candidates = [8usize, 32, 128];
        let (_, flat) = exp.best_batch(
            cores,
            Approach::FlatOptimized,
            &candidates,
            &m,
            ScopeSel::Auto,
        );
        let (_, hyb) = exp.best_batch(
            cores,
            Approach::HybridMultiple,
            &candidates,
            &m,
            ScopeSel::Auto,
        );
        flat.seconds() / hyb.seconds()
    };
    let g512 = gap(512);
    let g4096 = gap(4096);
    let g16384 = gap(16384);
    // At 512 cores the two are within a fraction of a percent (the paper's
    // crossover point); from there the hybrid advantage must open up.
    assert!(g512 >= 0.99, "hybrid must not lose at 512 cores: {g512}");
    assert!(
        g4096 > g512 * 0.99,
        "gap must not shrink: {g512} -> {g4096}"
    );
    assert!(
        g16384 > g4096,
        "gap must grow with scale: {g4096} -> {g16384}"
    );
}

/// Fig. 5's observation: batching helps Hybrid multiple more than Flat
/// optimized on the 32-grid job.
#[test]
fn batching_helps_hybrid_more() {
    let m = model();
    let exp = FdExperiment {
        grid_ext: [144, 144, 144],
        n_grids: 32,
        bytes_per_point: 8,
        sweeps: 1,
    };
    let gain = |a: Approach| {
        exp.run(4096, a, 1, &m, ScopeSel::Cell).seconds()
            / exp.run(4096, a, 8, &m, ScopeSel::Cell).seconds()
    };
    let hyb = gain(Approach::HybridMultiple);
    let flat = gain(Approach::FlatOptimized);
    assert!(hyb > 1.0, "batching must help hybrid: {hyb}");
    assert!(hyb > flat, "hybrid must gain more: {hyb} vs {flat}");
}

/// Where each approach spends its time mirrors §VI: the original flat
/// code burns the most CPU on messaging, master-only on synchronization,
/// hybrid multiple the least on either.
#[test]
fn time_breakdown_reflects_the_approaches() {
    let m = model();
    let mk = |a: Approach, batch: usize| {
        run_timed(
            &TimedJob {
                cores: 2048,
                grid_ext: [192, 192, 192],
                n_grids: 512,
                bytes_per_point: 8,
                config: FdConfig::paper(a).with_batch(batch),
            },
            &m,
            ScopeSel::Cell,
        )
    };
    let orig = mk(Approach::FlatOriginal, 1);
    let hyb = mk(Approach::HybridMultiple, 32);
    let mo = mk(Approach::HybridMasterOnly, 32);
    // Fractions are sane and bounded.
    for r in [&orig, &hyb, &mo] {
        let total = r.compute_fraction() + r.comm_fraction() + r.sync_fraction();
        assert!(total <= 1.0 + 1e-9, "busy fractions exceed 1: {total}");
        assert!(r.compute_fraction() > 0.0);
    }
    assert!(
        orig.comm_fraction() > hyb.comm_fraction(),
        "unbatched blocking exchange must burn more CPU on messaging: {} vs {}",
        orig.comm_fraction(),
        hyb.comm_fraction()
    );
    assert!(
        mo.sync_fraction() > hyb.sync_fraction() * 10.0,
        "per-grid barriers must dominate master-only sync: {} vs {}",
        mo.sync_fraction(),
        hyb.sync_fraction()
    );
}

/// `MPI_Cart_create` reordering matters: linear rank placement sends
/// neighbor traffic across many hops and shared links.
#[test]
fn cart_reordering_beats_linear_placement() {
    use gpaw_repro::fd::timed::{job_map, job_map_unreordered, run_timed_with_map};
    let m = model();
    let j = job(1024, Approach::FlatOptimized, 8);
    let with = run_timed_with_map(&j, job_map(&j), &m, ScopeSel::Full);
    let without = run_timed_with_map(&j, job_map_unreordered(&j), &m, ScopeSel::Full);
    assert!(
        without.makespan.as_secs_f64() > 1.2 * with.makespan.as_secs_f64(),
        "linear placement should cost ≥20%: {} vs {}",
        without.makespan,
        with.makespan
    );
}

/// The memory ceiling behind the 32-grid cap of Fig. 5.
#[test]
fn fig5_job_is_memory_feasible() {
    use gpaw_repro::bgp::memory::{check_fits, JobSpec};
    use gpaw_repro::bgp::{ExecMode, Partition};
    let job = JobSpec {
        grid_ext: [144, 144, 144],
        n_grids: 32,
        bytes_per_point: 8,
        halo: 2,
    };
    // Decomposed over 512 virtual ranks it fits easily...
    let p = Partition::standard(128, ExecMode::Virtual).unwrap();
    assert!(check_fits(&job, &p, [8, 8, 8]).is_ok());
    // ...but a single virtual-mode rank cannot hold it.
    let p1 = Partition::standard(1, ExecMode::Virtual).unwrap();
    assert!(check_fits(&job, &p1, [1, 1, 1]).is_err());
}
