//! Cross-crate integration: every programming approach, on real data, must
//! reproduce the sequential whole-grid stencil bit-for-bit, across scalar
//! types, boundary conditions, decompositions and engine options.

use gpaw_repro::bgp::{CartMap, Partition};
use gpaw_repro::fd::config::{Approach, FdConfig};
use gpaw_repro::fd::exec::{max_error_vs_reference, run_distributed, sequential_reference};
use gpaw_repro::grid::scalar::C64;
use gpaw_repro::grid::stencil::{BoundaryCond, StencilCoeffs};

fn coef() -> StencilCoeffs {
    StencilCoeffs::laplacian([0.21, 0.25, 0.31])
}

fn map_for(approach: Approach, nodes: usize, grid: [usize; 3]) -> CartMap {
    let p = Partition::standard(nodes, approach.exec_mode()).expect("standard partition");
    CartMap::best(p, grid)
}

fn check_f64(cfg: &FdConfig, nodes: usize, grid: [usize; 3], n_grids: usize) {
    let map = map_for(cfg.approach, nodes, grid);
    let c = coef();
    let outputs = run_distributed::<f64>(grid, n_grids, 1234, &c, cfg, &map);
    let reference = sequential_reference::<f64>(grid, n_grids, 1234, &c, cfg.bc, cfg.sweeps);
    let err = max_error_vs_reference(&outputs, &map, grid, &reference);
    assert_eq!(err, 0.0, "{} must be bit-exact", cfg.approach.label());
}

#[test]
fn every_approach_every_bc_matches_reference() {
    for approach in Approach::GRAPHED {
        for bc in [BoundaryCond::Periodic, BoundaryCond::Zero] {
            let mut cfg = FdConfig::paper(approach).with_batch(3);
            cfg.bc = bc;
            check_f64(&cfg, 2, [14, 12, 10], 7);
        }
    }
}

#[test]
fn complex_grids_every_approach() {
    for approach in Approach::GRAPHED {
        let cfg = FdConfig::paper(approach).with_batch(2);
        let map = map_for(approach, 2, [12, 12, 12]);
        let c = coef();
        let outputs = run_distributed::<C64>([12, 12, 12], 5, 99, &c, &cfg, &map);
        let reference = sequential_reference::<C64>([12, 12, 12], 5, 99, &c, cfg.bc, cfg.sweeps);
        let err = max_error_vs_reference(&outputs, &map, [12, 12, 12], &reference);
        assert_eq!(err, 0.0, "{} complex", approach.label());
    }
}

#[test]
fn prime_extents_stress_remainder_paths() {
    // 13, 11, 17 share no factors with any process grid: every rank border
    // lands off the uniform split.
    for approach in [Approach::FlatOptimized, Approach::HybridMultiple] {
        let cfg = FdConfig::paper(approach).with_batch(4);
        check_f64(&cfg, 2, [13, 11, 17], 6);
    }
}

#[test]
fn repeated_sweeps_compose() {
    for sweeps in [2, 4] {
        let cfg = FdConfig::paper(Approach::HybridMultiple)
            .with_batch(2)
            .with_sweeps(sweeps);
        check_f64(&cfg, 1, [10, 10, 10], 5);
    }
}

#[test]
fn asymmetric_stencil_distributes_correctly() {
    // The general 13-coefficient operator of §II-A, not just the Laplacian:
    // direction-dependent weights exercise the face orientation logic.
    let c = StencilCoeffs {
        c0: 0.5,
        m1: [1.0, -2.0, 0.25],
        p1: [0.0, 3.0, -1.0],
        m2: [0.125, 0.0, 2.0],
        p2: [-0.5, 1.5, 0.0],
    };
    let grid = [12, 10, 8];
    let cfg = FdConfig::paper(Approach::FlatOptimized).with_batch(2);
    let map = map_for(cfg.approach, 2, grid);
    let outputs = run_distributed::<f64>(grid, 4, 5, &c, &cfg, &map);
    let reference = sequential_reference::<f64>(grid, 4, 5, &c, cfg.bc, cfg.sweeps);
    assert_eq!(
        max_error_vs_reference(&outputs, &map, grid, &reference),
        0.0
    );
}

#[test]
fn four_nodes_bigger_cluster() {
    // 16 virtual ranks / 4 SMP processes.
    check_f64(&FdConfig::paper(Approach::FlatOriginal), 4, [16, 16, 16], 5);
    check_f64(
        &FdConfig::paper(Approach::HybridMasterOnly).with_batch(2),
        4,
        [16, 16, 16],
        5,
    );
}

#[test]
fn single_grid_job() {
    // One grid: the batching/double-buffering edge case.
    for approach in Approach::GRAPHED {
        let cfg = FdConfig::paper(approach).with_batch(8);
        check_f64(&cfg, 1, [10, 10, 10], 1);
    }
}

#[test]
fn grids_fewer_than_threads() {
    // Hybrid multiple with 3 grids over 4 threads: one thread idles.
    let cfg = FdConfig::paper(Approach::HybridMultiple).with_batch(2);
    check_f64(&cfg, 1, [10, 10, 10], 3);
}

#[test]
fn smp_partition_of_one_node_self_wraps() {
    // A single SMP process: every neighbor is the rank itself; the
    // functional transport must deliver self-sends.
    let cfg = FdConfig::paper(Approach::HybridMultiple).with_batch(2);
    check_f64(&cfg, 1, [9, 9, 9], 4);
}

#[test]
fn uneven_virtual_mode_partition() {
    // 1x1x2 nodes in virtual mode: process grid blocks differ per axis.
    let cfg = FdConfig::paper(Approach::FlatOptimized).with_batch(3);
    check_f64(&cfg, 2, [11, 12, 20], 9);
}
