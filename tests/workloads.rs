//! Integration of the mini-GPAW workloads with the grid substrate, plus
//! the "same subset of every grid" demonstration the paper's §IV hinges
//! on.

use gpaw_repro::grid::decomp::Decomposition;
use gpaw_repro::grid::generator::gaussian_rho;
use gpaw_repro::grid::grid3::Grid3;
use gpaw_repro::grid::gridset::GridSet;
use gpaw_repro::grid::stencil::BoundaryCond;
use gpaw_repro::mini::ortho::{dot, dot_decomposed, gram_schmidt, orthonormality_error};
use gpaw_repro::mini::{kinetic_energies, PoissonSolver, ToyScf};

/// Poisson + kinetic + SCF chained end-to-end stay numerically sane.
#[test]
fn scf_pipeline_end_to_end() {
    let n = 10;
    let h = [0.3; 3];
    let mut psi: GridSet<f64> = GridSet::from_fn(3, [n, n, n], 2, |g, i, j, k| {
        let f = |x: usize, p: usize| {
            (std::f64::consts::TAU * (p + 1) as f64 * x as f64 / n as f64).sin()
        };
        f(i, g) + 0.4 * f(j, g + 1) + 0.2 * f(k, g + 2)
    });
    let scf = ToyScf::new(h, BoundaryCond::Periodic);
    let reports = scf.run(&mut psi, 5);
    assert!(reports.iter().all(|r| r.total_energy.is_finite()));
    assert!(reports.iter().all(|r| r.ortho_error < 1e-9));
    assert!(reports.last().unwrap().total_energy <= reports[0].total_energy + 1e-9);
    // States remain normalized, so kinetic energies stay positive.
    let kin = kinetic_energies(h, BoundaryCond::Periodic, &mut psi);
    assert!(kin.iter().all(|&e| e > 0.0));
}

/// The Poisson solver inverts the discrete Laplacian built by the same
/// stencil code the FD engine distributes.
#[test]
fn poisson_gaussian_blob() {
    let n = [20, 20, 20];
    let blob = gaussian_rho(n, [0.5, 0.5, 0.5], 0.15);
    let mut rho: Grid3<f64> = Grid3::from_fn(n, 2, blob);
    let mean: f64 = rho.iter_interior().map(|(_, v)| v).sum::<f64>() / rho.interior_points() as f64;
    for v in rho.data_mut() {
        *v -= mean;
    }
    let solver = PoissonSolver::new([0.25; 3], BoundaryCond::Periodic)
        .with_tol(1e-7)
        .with_max_iters(100_000);
    let mut phi = Grid3::zeros(n, 2);
    let stats = solver.solve(&rho, &mut phi);
    assert!(stats.converged(1e-6), "residual {}", stats.residual);
}

/// §IV's rule, demonstrated: with *matching* decompositions, per-subdomain
/// partial dots plus one allreduce equal the global inner product — for
/// every decomposition shape. With *mismatched* subsets (what the paper's
/// FlatStatic grid groups would imply for orthogonalization), the partial
/// sums are wrong.
#[test]
fn same_subset_rule_for_orthogonalization() {
    let ext = [12, 12, 12];
    let dv = 0.25f64.powi(3);
    let psi: GridSet<f64> = GridSet::from_fn(2, ext, 2, |g, i, j, k| {
        ((i * (g + 2) + j * 3 + k * 7) % 11) as f64 - 5.0
    });
    let global = dot(psi.grid(0), psi.grid(1), dv);
    for dims in [[2, 2, 2], [4, 3, 1], [1, 1, 12]] {
        let d = Decomposition::new(ext, dims);
        let partial = dot_decomposed(psi.grid(0), psi.grid(1), &d, dv);
        assert!(
            (global - partial).abs() < 1e-9,
            "decomposition {dims:?} must reproduce the global dot"
        );
    }
    // A mismatched pairing (state 0 decomposed one way, state 1 another)
    // cannot even be formed with this API — the subsets would disagree —
    // which is precisely why GPAW requires the same subset of every grid.
}

/// Gram–Schmidt then re-check with decomposed dots: orthonormality is
/// visible from any rank's perspective after the allreduce.
#[test]
fn orthogonalization_with_decomposed_dots() {
    let ext = [10, 10, 10];
    let dv = 0.3f64.powi(3);
    let mut psi: GridSet<f64> = GridSet::from_fn(3, ext, 2, |g, i, j, k| {
        ((i + 2 * j + 3 * k + g * 17) % 13) as f64 + if i == g { 30.0 } else { 0.0 }
    });
    gram_schmidt(&mut psi, dv);
    assert!(orthonormality_error(&psi, dv) < 1e-10);
    let d = Decomposition::new(ext, [2, 5, 1]);
    for a in 0..3 {
        for b in 0..a {
            let partial = dot_decomposed(psi.grid(a), psi.grid(b), &d, dv);
            assert!(partial.abs() < 1e-9, "⟨{a}|{b}⟩ = {partial}");
        }
        let norm = dot_decomposed(psi.grid(a), psi.grid(a), &d, dv);
        assert!((norm - 1.0).abs() < 1e-9);
    }
}
