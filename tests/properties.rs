//! Randomized property tests on the core invariants: decomposition
//! coverage, halo round-trips, stencil algebra, batching invariance and
//! DES determinism.
//!
//! The harness is hand-rolled (seeded `SplitMix64` case loops) instead of
//! proptest so the workspace builds with zero external dependencies. Every
//! case derives from a fixed seed, so failures reproduce exactly; a failed
//! assertion reports the case index, from which the full input can be
//! regenerated.

use gpaw_repro::des::{EventQueue, SimDuration, SplitMix64};
use gpaw_repro::grid::decomp::{best_dims, factor_triples, surface_points, Decomposition};
use gpaw_repro::grid::grid3::Grid3;
use gpaw_repro::grid::gridset::{batch_indices, growing_batches};
use gpaw_repro::grid::halo::{pack_face, unpack_face, Side};
use gpaw_repro::grid::norms::max_abs_diff;
use gpaw_repro::grid::stencil::{apply, apply_sequential, BoundaryCond, StencilCoeffs};

const CASES: usize = 64;

fn usize_in(rng: &mut SplitMix64, lo: usize, hi: usize) -> usize {
    lo + rng.next_below((hi - lo) as u64) as usize
}

fn small_ext(rng: &mut SplitMix64) -> [usize; 3] {
    [
        usize_in(rng, 4, 12),
        usize_in(rng, 4, 12),
        usize_in(rng, 4, 12),
    ]
}

/// Every decomposition partitions the global index space exactly.
#[test]
fn decomposition_partitions() {
    let mut rng = SplitMix64::new(0xDECDEC01);
    for case in 0..CASES {
        let ext = small_ext(&mut rng);
        let dims = [
            usize_in(&mut rng, 1, 4),
            usize_in(&mut rng, 1, 4),
            usize_in(&mut rng, 1, 4),
        ];
        if (0..3).any(|i| dims[i] > ext[i]) {
            continue;
        }
        let d = Decomposition::new(ext, dims);
        let mut count = vec![0u8; ext[0] * ext[1] * ext[2]];
        for (_, sub) in d.iter() {
            for i in sub.start[0]..sub.end()[0] {
                for j in sub.start[1]..sub.end()[1] {
                    for k in sub.start[2]..sub.end()[2] {
                        count[(i * ext[1] + j) * ext[2] + k] += 1;
                    }
                }
            }
        }
        assert!(
            count.iter().all(|&c| c == 1),
            "case {case}: ext {ext:?} dims {dims:?} not an exact partition"
        );
    }
}

/// Per-axis extents differ by at most one plane across ranks.
#[test]
fn decomposition_is_balanced() {
    let mut rng = SplitMix64::new(0xDECDEC02);
    for case in 0..CASES {
        let ext = small_ext(&mut rng);
        let dims = [
            usize_in(&mut rng, 1, 4),
            usize_in(&mut rng, 1, 4),
            usize_in(&mut rng, 1, 4),
        ];
        if (0..3).any(|i| dims[i] > ext[i]) {
            continue;
        }
        let d = Decomposition::new(ext, dims);
        let mut min = usize::MAX;
        let mut max = 0usize;
        for (_, sub) in d.iter() {
            min = min.min(sub.ext[0]);
            max = max.max(sub.ext[0]);
        }
        assert!(
            max - min <= 1,
            "case {case}: ext {ext:?} dims {dims:?} unbalanced ({min}..{max})"
        );
    }
}

/// factor_triples are complete factorizations.
#[test]
fn factor_triples_multiply_back() {
    for n in 1usize..200 {
        let ts = factor_triples(n);
        assert!(!ts.is_empty(), "n={n}: no factorization");
        for t in ts {
            assert_eq!(t[0] * t[1] * t[2], n, "n={n}: bad triple {t:?}");
        }
    }
}

/// best_dims never beats brute force on the surface metric.
#[test]
fn best_dims_is_optimal() {
    let mut rng = SplitMix64::new(0xDECDEC03);
    for case in 0..CASES {
        let n = usize_in(&mut rng, 1, 65);
        let ext = [
            usize_in(&mut rng, 64, 100),
            usize_in(&mut rng, 64, 100),
            usize_in(&mut rng, 64, 100),
        ];
        let best = best_dims(n, ext);
        let best_surface = surface_points(ext, best);
        for t in factor_triples(n) {
            if (0..3).all(|i| t[i] <= ext[i]) {
                assert!(
                    best_surface <= surface_points(ext, t) + 1e-9,
                    "case {case}: n={n} ext {ext:?} — {best:?} loses to {t:?}"
                );
            }
        }
    }
}

/// Halo pack → unpack between two neighbor grids moves exactly the
/// sender's boundary planes.
#[test]
fn halo_round_trip() {
    let mut rng = SplitMix64::new(0xDECDEC04);
    for case in 0..CASES {
        let ext = small_ext(&mut rng);
        let axis = usize_in(&mut rng, 0, 3);
        let a: Grid3<f64> = {
            let mut vals = rng.split();
            Grid3::from_fn(ext, 2, move |_, _, _| vals.next_f64())
        };
        let mut b: Grid3<f64> = Grid3::zeros(ext, 2);
        let mut buf = Vec::new();
        pack_face(&a, axis, Side::High, &mut buf);
        unpack_face(&mut b, axis, Side::Low, &buf);
        // b's low ghost planes must equal a's high interior planes.
        let n = ext[axis];
        for p in 0..2usize {
            let src_plane = (n - 2 + p) as isize;
            let dst_plane = p as isize - 2;
            for j in 0..ext[(axis + 1) % 3] {
                for k in 0..ext[(axis + 2) % 3] {
                    let mut cs = [0isize; 3];
                    cs[axis] = src_plane;
                    cs[(axis + 1) % 3] = j as isize;
                    cs[(axis + 2) % 3] = k as isize;
                    let mut cd = cs;
                    cd[axis] = dst_plane;
                    assert_eq!(
                        a.get(cs[0], cs[1], cs[2]),
                        b.get(cd[0], cd[1], cd[2]),
                        "case {case}: ext {ext:?} axis {axis} plane {p}"
                    );
                }
            }
        }
    }
}

/// The stencil is linear: L(αf + βg) = αLf + βLg.
#[test]
fn stencil_linearity() {
    let mut rng = SplitMix64::new(0xDECDEC05);
    for case in 0..CASES {
        let ext = small_ext(&mut rng);
        let alpha = rng.next_f64() * 6.0 - 3.0;
        let beta = rng.next_f64() * 6.0 - 3.0;
        let coef = StencilCoeffs::laplacian([0.3; 3]);
        let f: Grid3<f64> = {
            let mut vals = rng.split();
            Grid3::from_fn(ext, 2, move |_, _, _| vals.next_f64() - 0.5)
        };
        let g: Grid3<f64> = {
            let mut vals = rng.split();
            Grid3::from_fn(ext, 2, move |_, _, _| vals.next_f64() - 0.5)
        };
        let mut combo: Grid3<f64> = Grid3::zeros(ext, 2);
        for i in 0..ext[0] as isize {
            for j in 0..ext[1] as isize {
                for k in 0..ext[2] as isize {
                    combo.set(i, j, k, alpha * f.get(i, j, k) + beta * g.get(i, j, k));
                }
            }
        }
        let apply_to = |input: &Grid3<f64>| {
            let mut x = input.clone();
            let mut out = Grid3::zeros(ext, 2);
            apply_sequential(&coef, &mut x, &mut out, BoundaryCond::Periodic);
            out
        };
        let lf = apply_to(&f);
        let lg = apply_to(&g);
        let lcombo = apply_to(&combo);
        let mut expect: Grid3<f64> = Grid3::zeros(ext, 2);
        for i in 0..ext[0] as isize {
            for j in 0..ext[1] as isize {
                for k in 0..ext[2] as isize {
                    expect.set(i, j, k, alpha * lf.get(i, j, k) + beta * lg.get(i, j, k));
                }
            }
        }
        assert!(
            max_abs_diff(&lcombo, &expect) < 1e-10,
            "case {case}: ext {ext:?} α={alpha} β={beta}"
        );
    }
}

/// Periodic translation invariance: shifting the input cyclically shifts
/// the output identically.
#[test]
fn stencil_translation_invariance() {
    let mut rng = SplitMix64::new(0xDECDEC06);
    for case in 0..CASES {
        let ext = small_ext(&mut rng);
        let shift = usize_in(&mut rng, 1, 4);
        let coef = StencilCoeffs::laplacian([0.25; 3]);
        let vals: Vec<f64> = (0..ext[0] * ext[1] * ext[2])
            .map(|_| rng.next_f64())
            .collect();
        let at = |i: usize, j: usize, k: usize| vals[(i * ext[1] + j) * ext[2] + k];
        let f: Grid3<f64> = Grid3::from_fn(ext, 2, &at);
        let f_shift: Grid3<f64> = Grid3::from_fn(ext, 2, |i, j, k| at((i + shift) % ext[0], j, k));
        let apply_to = |input: &Grid3<f64>| {
            let mut x = input.clone();
            let mut out = Grid3::zeros(ext, 2);
            apply_sequential(&coef, &mut x, &mut out, BoundaryCond::Periodic);
            out
        };
        let lf = apply_to(&f);
        let lf_shift = apply_to(&f_shift);
        for i in 0..ext[0] {
            for j in 0..ext[1] as isize {
                for k in 0..ext[2] as isize {
                    let a = lf.get(((i + shift) % ext[0]) as isize, j, k);
                    let b = lf_shift.get(i as isize, j, k);
                    assert!(
                        (a - b).abs() < 1e-12,
                        "case {case}: ext {ext:?} shift {shift} at ({i},{j},{k})"
                    );
                }
            }
        }
    }
}

/// Batch slicing covers every index exactly once, in order.
#[test]
fn batches_cover_exactly() {
    let mut rng = SplitMix64::new(0xDECDEC07);
    for _ in 0..CASES {
        let n = usize_in(&mut rng, 0, 100);
        let batch = usize_in(&mut rng, 1, 20);
        let ids: Vec<usize> = (0..n).collect();
        let flat: Vec<usize> = batch_indices(&ids, batch).concat();
        assert_eq!(flat, ids, "n={n} batch={batch}");
        let grown: Vec<usize> = growing_batches(&ids, batch, (batch / 2).max(1)).concat();
        assert_eq!(grown, ids, "n={n} batch={batch} (growing)");
    }
}

/// Event queue: any interleaving of schedules pops in non-decreasing time
/// order and never loses events.
#[test]
fn event_queue_orders_all() {
    let mut rng = SplitMix64::new(0xDECDEC08);
    for case in 0..CASES {
        let n = usize_in(&mut rng, 1, 300);
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut scheduled = 0usize;
        let mut popped = 0usize;
        let mut last = 0u64;
        for i in 0..n {
            q.schedule(SimDuration::from_ps(rng.next_below(10_000)), i);
            scheduled += 1;
            if rng.next_below(3) == 0 {
                if let Some((t, _)) = q.pop() {
                    assert!(t.0 >= last, "case {case}: time went backwards");
                    last = t.0;
                    popped += 1;
                }
            }
        }
        while let Some((t, _)) = q.pop() {
            assert!(t.0 >= last, "case {case}: time went backwards in drain");
            last = t.0;
            popped += 1;
        }
        assert_eq!(scheduled, popped, "case {case}: lost events");
    }
}

/// Apply via whole-grid and via arbitrary slab splits agree.
#[test]
fn slab_split_composition_various_cuts() {
    let coef = StencilCoeffs::laplacian([0.2; 3]);
    let ext = [11, 7, 9];
    let mut input: Grid3<f64> = Grid3::from_fn(ext, 2, |i, j, k| ((i * 5 + j * 3 + k) % 13) as f64);
    input.fill_halo_periodic();
    let mut whole = Grid3::zeros(ext, 2);
    apply(&coef, &input, &mut whole);
    for cuts in [vec![], vec![5], vec![2, 7], vec![1, 4, 8]] {
        let mut slabbed: Grid3<f64> = Grid3::zeros(ext, 2);
        let mut bounds = vec![0];
        bounds.extend(&cuts);
        bounds.push(ext[0]);
        let slabs = slabbed.split_x_slabs(&cuts);
        for (s, slab) in slabs.into_iter().enumerate() {
            gpaw_repro::grid::stencil::apply_slab(&coef, &input, bounds[s], bounds[s + 1], slab);
        }
        assert_eq!(whole, slabbed, "cuts {cuts:?}");
    }
}
